#include "stats/pmf.h"

#include <cmath>
#include <stdexcept>

namespace gear::stats {

void Pmf::add(std::int64_t key, double mass) {
  masses_[key] += mass;
  total_ += mass;
}

void Pmf::merge(const Pmf& other) {
  for (const auto& [key, mass] : other.masses_) add(key, mass);
}

double Pmf::mass(std::int64_t key) const {
  const auto it = masses_.find(key);
  return it == masses_.end() ? 0.0 : it->second;
}

double Pmf::mean() const {
  double acc = 0.0;
  for (const auto& [key, mass] : masses_) acc += static_cast<double>(key) * mass;
  return acc;
}

double Pmf::mean_abs() const {
  double acc = 0.0;
  for (const auto& [key, mass] : masses_) {
    acc += std::abs(static_cast<double>(key)) * mass;
  }
  return acc;
}

std::int64_t Pmf::min_key() const {
  if (masses_.empty()) throw std::logic_error("Pmf::min_key: empty");
  return masses_.begin()->first;
}

std::int64_t Pmf::max_key() const {
  if (masses_.empty()) throw std::logic_error("Pmf::max_key: empty");
  return masses_.rbegin()->first;
}

Pmf Pmf::from_histogram(const SparseHistogram& hist) {
  Pmf pmf;
  if (hist.total() == 0) return pmf;
  const double inv = 1.0 / static_cast<double>(hist.total());
  for (const auto& [key, count] : hist.entries()) {
    pmf.add(key, static_cast<double>(count) * inv);
  }
  return pmf;
}

}  // namespace gear::stats
