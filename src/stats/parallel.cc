#include "stats/parallel.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace gear::stats {

// One for_each invocation. Heap-allocated and shared with the workers so
// a worker that wakes late (after the job already completed and a new one
// started) still holds the old, fully-claimed job and can never claim an
// index of — or call the callable of — a job it was not dispatched for.
struct ParallelExecutor::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::mutex error_mu;
  std::exception_ptr error;  // first exception thrown by fn
};

ParallelExecutor::ParallelExecutor(int threads) {
  int want = threads > 0 ? threads
                         : static_cast<int>(std::thread::hardware_concurrency());
  want = std::max(want, 1);
  workers_.reserve(static_cast<std::size_t>(want - 1));
  for (int i = 0; i < want - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::vector<Shard> ParallelExecutor::make_shards(std::uint64_t total,
                                                 std::uint64_t shard_size) {
  if (shard_size == 0) shard_size = kDefaultShardSize;
  std::vector<Shard> out;
  std::size_t index = 0;
  for (std::uint64_t begin = 0; begin < total; begin += shard_size) {
    out.push_back({index++, begin, std::min(begin + shard_size, total)});
  }
  return out;
}

Rng ParallelExecutor::shard_rng(std::uint64_t master_seed,
                                std::size_t shard_index) {
  return Rng::substream(master_seed, "shard:" + std::to_string(shard_index));
}

void ParallelExecutor::run_job(Job& job, bool caller) {
  // Which thread claims which index is scheduling-dependent, so the
  // claim tallies live in the wall-clock channel only.
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    if (caller) {
      GEAR_OBS_RUNTIME_COUNT("parallel/claims_caller", 1);
    } else {
      GEAR_OBS_RUNTIME_COUNT("parallel/claims_worker", 1);
    }
    try {
      GEAR_OBS_SPAN("parallel/shard_work", "parallel");
      (*job.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    job.completed.fetch_add(1, std::memory_order_acq_rel);
  }
}

void ParallelExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    if (!job) continue;
    run_job(*job, /*caller=*/false);
    if (job->completed.load(std::memory_order_acquire) >= job->n) {
      // Possibly the last finisher: wake the caller. The lock pairs with
      // the caller's predicate check so the notify cannot be lost.
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
}

void ParallelExecutor::for_each(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Job geometry is a pure function of the workload (never of the thread
  // count), so these two counters sit in the deterministic channel.
  GEAR_OBS_COUNT("parallel/for_each_calls", 1);
  GEAR_OBS_COUNT("parallel/indices", n);
  GEAR_OBS_SPAN("parallel/for_each", "parallel");
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  if (workers_.empty()) {
    run_job(*job, /*caller=*/true);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = job;
      ++epoch_;
    }
    work_cv_.notify_all();
    run_job(*job, /*caller=*/true);  // the calling thread works too
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return job->completed.load(std::memory_order_acquire) >= job->n;
    });
    job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace gear::stats
