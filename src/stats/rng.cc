#include "stats/rng.h"

#include <cassert>

namespace gear::stats {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

Rng Rng::substream(std::uint64_t master_seed, std::string_view label) {
  // splitmix-style finalizer over (seed ^ hash) keeps substreams decorrelated
  // even for adjacent seeds.
  std::uint64_t z = master_seed ^ fnv1a(label);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return Rng(z);
}

std::uint64_t Rng::bits(int n) {
  assert(n >= 0 && n <= 64);
  if (n == 0) return 0;
  if (n == 64) return engine_();
  return engine_() >> (64 - n);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform01() {
  // 53-bit mantissa resolution.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::flip(double p) { return uniform01() < p; }

}  // namespace gear::stats
