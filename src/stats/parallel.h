// Deterministic parallel execution for Monte-Carlo and streaming sweeps.
//
// Every stochastic driver in this repository shards its trial count into
// fixed-size chunks, gives shard i an independent RNG derived as
// Rng::substream(master_seed, "shard:<i>"), runs the chunks on a thread
// pool, and merges the per-shard results in ascending shard index order.
// The shard geometry depends only on (total, shard_size) — never on the
// thread count — so results are bit-identical for any pool width,
// including the inline single-threaded fallback. The canonical result is
// therefore "run the shards sequentially in index order and merge"; the
// pool is free to execute them in any interleaving. See DESIGN.md,
// "Shard/merge determinism contract".
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "stats/rng.h"

namespace gear::stats {

/// Half-open trial range [begin, end) assigned to one shard.
struct Shard {
  std::size_t index = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  std::uint64_t size() const { return end - begin; }
};

/// Fork/join thread pool. Construction spawns the workers once; each
/// for_each() call distributes indices across them and blocks until all
/// are done. The calling thread participates in the work, so an executor
/// built with `threads == 1` owns no worker threads and runs everything
/// inline — same results, no pool overhead.
class ParallelExecutor {
 public:
  /// Default trials per shard: large enough to amortize dispatch, small
  /// enough that a skewed pool still load-balances.
  static constexpr std::uint64_t kDefaultShardSize = 1ULL << 16;

  /// `threads <= 0` uses std::thread::hardware_concurrency().
  explicit ParallelExecutor(int threads = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  /// Total execution width, including the calling thread.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Canonical shard geometry: ceil(total / shard_size) shards of
  /// `shard_size` trials each, the last one truncated. A function of the
  /// arguments only — never of the executor or its thread count.
  static std::vector<Shard> make_shards(
      std::uint64_t total, std::uint64_t shard_size = kDefaultShardSize);

  /// The documented per-shard stream: substream "shard:<index>" of the
  /// master seed.
  static Rng shard_rng(std::uint64_t master_seed, std::size_t shard_index);

  /// Runs fn(i) for every i in [0, n), distributed over the pool; blocks
  /// until all calls have returned. fn is invoked concurrently and must
  /// only touch per-index state. The first exception thrown by fn is
  /// rethrown here once the remaining indices have drained.
  void for_each(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Maps fn over [0, n) into a vector in index order: out[i] = fn(i).
  template <typename T, typename Fn>
  std::vector<T> map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    for_each(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Job;
  void worker_loop();
  static void run_job(Job& job, bool caller);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // guarded by mu_
  std::uint64_t epoch_ = 0;   // guarded by mu_
  bool stop_ = false;         // guarded by mu_
};

}  // namespace gear::stats
