// Operand-distribution models for the analytic error engines.
//
// The paper's error model (and core::exact_error_distribution) assumes
// uniform i.i.d. operands, but real workloads — the integral/SAD/LPF/
// Sobel traces the paper itself evaluates — are correlated and
// non-uniform, so the uniform analytic figures diverge from Monte Carlo
// on those traces. Wu et al. ("Error Statistics of Block-based
// Approximate Adders") show exact error statistics are computable for
// *arbitrary* input distributions from block-level joint probabilities.
//
// OperandModel is that distribution summary. The key observation making
// it exact: a block-based approximate adder's error is a pure function of
// the per-bit generate/propagate pattern (gen = a & b, prop = a ^ b) of
// the operand pair — the operand values beyond that pattern never matter.
// The joint distribution of (gen, prop) mask pairs is therefore a
// sufficient statistic for the error PMF of every configuration at that
// width, and it collapses hard on real traces (correlated app kernels
// revisit a small set of patterns). An OperandModel extracted from a
// trace stores exactly that joint distribution — the maximal form of Wu's
// block-joint probabilities, valid for every window geometry at once —
// plus the per-bit-position marginals, which alone give the cheaper
// independent-bits approximation.
//
// Three kinds, from most to least informed:
//  * kEmpirical — the full (gen, prop) class list; drives the exact
//    trace-conditioned engines (core::exact_error_distribution(cfg, m)).
//  * kMarginal — per-bit (gen, prop, kill) probabilities, independence
//    assumed across positions; drives the generalized telescoped-error
//    DP. An ablation point between uniform and empirical.
//  * kUniform — the closed-form gen=1/4, prop=1/2 model; engines given a
//    uniform model delegate to the seed uniform code paths and are
//    bit-identical to them (pinned by ErrorModelTrace tests).
//
// fingerprint() is the distribution's identity for cache keying
// (analysis::DseCache error tier): uniform models of one width share a
// fingerprint so cached uniform entries stay shared, while distinct
// traces get distinct fingerprints so conditioned entries never collide.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/distributions.h"

namespace gear::stats {

/// One generate/propagate pattern class and its sample count. `gen` and
/// `prop` are disjoint bit masks (gen = a & b, prop = a ^ b).
struct GpClass {
  std::uint64_t gen = 0;
  std::uint64_t prop = 0;
  std::uint64_t count = 0;

  bool operator==(const GpClass&) const = default;
};

class OperandModel {
 public:
  enum class Kind : std::uint8_t { kUniform, kMarginal, kEmpirical };

  /// The closed-form uniform i.i.d. model at `width` bits.
  static OperandModel uniform(int width);

  /// Exact empirical model of a captured operand trace: pairs are masked
  /// to `width` bits and collapsed into (gen, prop) classes. The class
  /// list is sorted by (gen, prop) with multiplicity in `count`, so two
  /// traces that are permutations of each other produce identical models
  /// and fingerprints. Requires a non-empty trace and width in [1, 64].
  static OperandModel from_trace(int width, const std::vector<OperandPair>& trace,
                                 std::string label = "trace");

  /// Draws `samples` pairs from `source` and builds the empirical model.
  /// For a TraceSource this replays the trace in order (cycling), so
  /// `samples == source.size()` captures it exactly.
  static OperandModel from_source(OperandSource& source, std::uint64_t samples);

  /// Independent-bits model from explicit per-position probabilities.
  /// `gen_p[t]` + `prop_p[t]` must not exceed 1 for any t.
  static OperandModel marginal(int width, std::vector<double> gen_p,
                               std::vector<double> prop_p,
                               std::string label = "marginal");

  /// This model with cross-position correlations dropped: a kMarginal
  /// model over the same per-bit marginals (kUniform stays kUniform).
  OperandModel marginal_model() const;

  int width() const { return width_; }
  Kind kind() const { return kind_; }
  bool is_uniform() const { return kind_ == Kind::kUniform; }
  const std::string& label() const { return label_; }
  /// Trace pairs behind an empirical model (0 for uniform/marginal).
  std::uint64_t samples() const { return samples_; }

  /// Per-bit-position marginals: P(generate at t), P(propagate at t),
  /// P(kill at t) = 1 - gen - prop. Positions at or above width() are
  /// deterministically kill (operands are zero there), so a narrow-trace
  /// model drives a wider adder correctly.
  double gen_prob(int t) const;
  double prop_prob(int t) const;
  double kill_prob(int t) const;

  /// Empirical (gen, prop) classes, sorted by (gen, prop); empty unless
  /// kind() == kEmpirical.
  const std::vector<GpClass>& classes() const { return classes_; }

  /// Block-level joint probability of the error DPs' window event: every
  /// bit of [lo, hi) propagates AND (when gen_at >= 0) bit `gen_at`
  /// generates. Exact against the class list for kEmpirical, a product
  /// of marginals for kMarginal, and the closed form for kUniform.
  double window_event_prob(int gen_at, int lo, int hi) const;

  /// FNV-1a identity of the distribution: a pure function of (kind,
  /// width, payload). Every uniform model of one width shares one
  /// fingerprint; empirical models of different traces collide only if
  /// their class lists are identical (in which case they *are* the same
  /// distribution). Used as the DseCache error-tier key component.
  std::uint64_t fingerprint() const { return fingerprint_; }

  bool operator==(const OperandModel& o) const {
    return kind_ == o.kind_ && width_ == o.width_ && classes_ == o.classes_ &&
           gen_p_ == o.gen_p_ && prop_p_ == o.prop_p_;
  }

 private:
  OperandModel() = default;
  void compute_fingerprint();

  Kind kind_ = Kind::kUniform;
  int width_ = 0;
  std::uint64_t samples_ = 0;
  std::vector<GpClass> classes_;  // kEmpirical only
  std::vector<double> gen_p_;     // per-bit marginals (empty for kUniform)
  std::vector<double> prop_p_;
  std::uint64_t fingerprint_ = 0;
  std::string label_;
};

}  // namespace gear::stats
