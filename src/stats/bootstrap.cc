#include "stats/bootstrap.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gear::stats {
namespace {

/// Inverse standard-normal CDF (Acklam's approximation), sufficient for CI
/// z-scores.
double norm_ppf(double p) {
  assert(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

}  // namespace

ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     int resamples, double level, Rng& rng) {
  assert(!samples.empty());
  assert(resamples > 0);
  assert(level > 0.0 && level < 1.0);

  double point = 0.0;
  for (double s : samples) point += s;
  point /= static_cast<double>(samples.size());

  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i)
      acc += samples[rng.range(0, samples.size() - 1)];
    means.push_back(acc / static_cast<double>(samples.size()));
  }
  std::sort(means.begin(), means.end());

  const double alpha = (1.0 - level) / 2.0;
  auto pick = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(means.size() - 1) + 0.5);
    return means[std::min(idx, means.size() - 1)];
  };
  return {point, pick(alpha), pick(1.0 - alpha), level};
}

ConfidenceInterval wilson_ci(std::uint64_t successes, std::uint64_t trials,
                             double level) {
  assert(trials > 0);
  assert(successes <= trials);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = norm_ppf(1.0 - (1.0 - level) / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2 * n)) / denom;
  const double half = z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom;
  return {p, std::max(0.0, center - half), std::min(1.0, center + half), level};
}

}  // namespace gear::stats
