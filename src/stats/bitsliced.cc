#include "stats/bitsliced.h"

#include <cassert>
#include <cstring>

#include "obs/metrics.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define GEAR_BITSLICED_X86_DISPATCH 1
#endif

namespace gear::stats {

namespace {

// Recursive block transpose via delta swaps. At step j, rows k with
// (k & j) == 0 pair with rows k | j; mask selects columns c with
// (c & j) == 0, and the swap exchanges element (k, c + j) with
// (k | j, c) — exactly the off-diagonal block exchange of the recursive
// transpose under the LSB-first column convention. The row loop is
// blocked (pairs form contiguous runs of length j) so the hot path is
// branch-free.
void transpose64_scalar(std::uint64_t* m) {
  static constexpr std::uint64_t kMasks[6] = {
      0x00000000FFFFFFFFULL, 0x0000FFFF0000FFFFULL, 0x00FF00FF00FF00FFULL,
      0x0F0F0F0F0F0F0F0FULL, 0x3333333333333333ULL, 0x5555555555555555ULL,
  };
  int j = 32;
  for (int level = 0; level < 6; ++level, j >>= 1) {
    const std::uint64_t mask = kMasks[level];
    for (int base = 0; base < 64; base += 2 * j) {
      std::uint64_t* lo = m + base;
      std::uint64_t* hi = lo + j;
      for (int i = 0; i < j; ++i) {
        const std::uint64_t t = ((lo[i] >> j) ^ hi[i]) & mask;
        lo[i] ^= t << j;
        hi[i] ^= t;
      }
    }
  }
}

#ifdef GEAR_BITSLICED_X86_DISPATCH

// gcc-12's avx512fintrin.h trips -W(maybe-)uninitialized on its own
// _mm512_undefined_epi32-based shuffle implementations when inlined here;
// the values are intentionally undefined inputs, not bugs in this file.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

// Same delta-swap network, four rows per ymm register. Levels j >= 4 pair
// whole registers; j = 2 pairs 64-bit lanes (0,2)/(1,3) and j = 1 pairs
// adjacent lanes, both handled with in-register permutes + a lane blend.
// Runtime-dispatched (target attribute, no -mavx2 baseline) so the binary
// stays portable to pre-AVX2 hosts.
__attribute__((target("avx2"))) void transpose64_avx2(std::uint64_t* m) {
  __m256i v[16];
  for (int i = 0; i < 16; ++i)
    v[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(m + 4 * i));

  static constexpr std::uint64_t kMasks[4] = {
      0x00000000FFFFFFFFULL, 0x0000FFFF0000FFFFULL, 0x00FF00FF00FF00FFULL,
      0x0F0F0F0F0F0F0F0FULL};
  int j = 32;
  for (int level = 0; level < 4; ++level, j >>= 1) {
    const __m256i mask =
        _mm256_set1_epi64x(static_cast<long long>(kMasks[level]));
    const int stride = j / 4;  // register distance of a row pair
    for (int i = 0; i < 16; ++i) {
      if (i & stride) continue;
      const __m256i lo = v[i];
      const __m256i hi = v[i | stride];
      const __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(lo, j), hi), mask);
      v[i] = _mm256_xor_si256(lo, _mm256_slli_epi64(t, j));
      v[i | stride] = _mm256_xor_si256(hi, t);
    }
  }
  {
    const __m256i mask = _mm256_set1_epi64x(0x3333333333333333LL);
    for (int i = 0; i < 16; ++i) {
      const __m256i a = v[i];
      // Row pairs (0,2) and (1,3): partner = 128-bit halves swapped.
      const __m256i sw = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(1, 0, 3, 2));
      __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(a, 2), sw), mask);
      t = _mm256_permute4x64_epi64(t, _MM_SHUFFLE(1, 0, 1, 0));
      v[i] = _mm256_xor_si256(
          a, _mm256_blend_epi32(_mm256_slli_epi64(t, 2), t, 0b11110000));
    }
  }
  {
    const __m256i mask = _mm256_set1_epi64x(0x5555555555555555LL);
    for (int i = 0; i < 16; ++i) {
      const __m256i a = v[i];
      // Adjacent-row pairs: partner = 64-bit lanes swapped pairwise.
      const __m256i sw = _mm256_shuffle_epi32(a, _MM_SHUFFLE(1, 0, 3, 2));
      __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(a, 1), sw), mask);
      t = _mm256_shuffle_epi32(t, _MM_SHUFFLE(1, 0, 1, 0));
      v[i] = _mm256_xor_si256(
          a, _mm256_blend_epi32(_mm256_slli_epi64(t, 1), t, 0b11001100));
    }
  }
  for (int i = 0; i < 16; ++i)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(m + 4 * i), v[i]);
}

// Eight rows per zmm register. Levels j = 32, 16, 8 pair registers;
// j = 4 / 2 / 1 pair 256-bit halves, 128-bit blocks and adjacent 64-bit
// lanes inside one register (shuffle + masked blend), mirroring the AVX2
// tail levels one octave up.
__attribute__((target("avx512f"))) void transpose64_avx512(std::uint64_t* m) {
  __m512i v[8];
  for (int i = 0; i < 8; ++i) v[i] = _mm512_loadu_si512(m + 8 * i);

  static constexpr std::uint64_t kMasks[3] = {
      0x00000000FFFFFFFFULL, 0x0000FFFF0000FFFFULL, 0x00FF00FF00FF00FFULL};
  int j = 32;
  for (int level = 0; level < 3; ++level, j >>= 1) {
    const __m512i mask =
        _mm512_set1_epi64(static_cast<long long>(kMasks[level]));
    const int stride = j / 8;
    for (int i = 0; i < 8; ++i) {
      if (i & stride) continue;
      const __m512i lo = v[i];
      const __m512i hi = v[i | stride];
      const __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(lo, static_cast<unsigned>(j)), hi),
          mask);
      v[i] = _mm512_xor_si512(
          lo, _mm512_slli_epi64(t, static_cast<unsigned>(j)));
      v[i | stride] = _mm512_xor_si512(hi, t);
    }
  }
  {
    const __m512i mask = _mm512_set1_epi64(0x0F0F0F0F0F0F0F0FLL);
    for (int i = 0; i < 8; ++i) {
      const __m512i a = v[i];
      // Row pairs at distance 4: partner = 256-bit halves swapped.
      const __m512i sw = _mm512_shuffle_i64x2(a, a, _MM_SHUFFLE(1, 0, 3, 2));
      __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(a, 4), sw), mask);
      t = _mm512_shuffle_i64x2(t, t, _MM_SHUFFLE(1, 0, 1, 0));
      v[i] = _mm512_xor_si512(
          a, _mm512_mask_blend_epi64(0xF0, _mm512_slli_epi64(t, 4), t));
    }
  }
  {
    const __m512i mask = _mm512_set1_epi64(0x3333333333333333LL);
    for (int i = 0; i < 8; ++i) {
      const __m512i a = v[i];
      // Row pairs at distance 2: partner = adjacent 128-bit blocks swapped.
      const __m512i sw = _mm512_shuffle_i64x2(a, a, _MM_SHUFFLE(2, 3, 0, 1));
      __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(a, 2), sw), mask);
      t = _mm512_shuffle_i64x2(t, t, _MM_SHUFFLE(2, 2, 0, 0));
      v[i] = _mm512_xor_si512(
          a, _mm512_mask_blend_epi64(0xCC, _mm512_slli_epi64(t, 2), t));
    }
  }
  {
    const __m512i mask = _mm512_set1_epi64(0x5555555555555555LL);
    for (int i = 0; i < 8; ++i) {
      const __m512i a = v[i];
      // Adjacent-row pairs: partner = 64-bit lanes swapped pairwise.
      const __m512i sw = _mm512_shuffle_epi32(
          a, static_cast<_MM_PERM_ENUM>(_MM_SHUFFLE(1, 0, 3, 2)));
      __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(a, 1), sw), mask);
      t = _mm512_shuffle_epi32(
          t, static_cast<_MM_PERM_ENUM>(_MM_SHUFFLE(1, 0, 1, 0)));
      v[i] = _mm512_xor_si512(
          a, _mm512_mask_blend_epi64(0xAA, _mm512_slli_epi64(t, 1), t));
    }
  }
  for (int i = 0; i < 8; ++i) _mm512_storeu_si512(m + 8 * i, v[i]);
}

// Interleaved transpose of two independent 64x64 matrices (the width > 32
// pack_gp case). v[0..7] holds m1, v[8..15] holds m2; the stride bits of
// every delta-swap level stay within one half, so the same loops drive
// both matrices and the two dependency chains overlap instead of
// serialising.
__attribute__((target("avx512f"))) void transpose64_avx512_pair(
    std::uint64_t* m1, std::uint64_t* m2) {
  __m512i v[16];
  for (int i = 0; i < 8; ++i) v[i] = _mm512_loadu_si512(m1 + 8 * i);
  for (int i = 0; i < 8; ++i) v[8 + i] = _mm512_loadu_si512(m2 + 8 * i);

  static constexpr std::uint64_t kMasks[3] = {
      0x00000000FFFFFFFFULL, 0x0000FFFF0000FFFFULL, 0x00FF00FF00FF00FFULL};
  int j = 32;
  for (int level = 0; level < 3; ++level, j >>= 1) {
    const __m512i mask =
        _mm512_set1_epi64(static_cast<long long>(kMasks[level]));
    const int stride = j / 8;
    for (int i = 0; i < 16; ++i) {
      if (i & stride) continue;
      const __m512i lo = v[i];
      const __m512i hi = v[i | stride];
      const __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(lo, static_cast<unsigned>(j)), hi),
          mask);
      v[i] = _mm512_xor_si512(
          lo, _mm512_slli_epi64(t, static_cast<unsigned>(j)));
      v[i | stride] = _mm512_xor_si512(hi, t);
    }
  }
  {
    const __m512i mask = _mm512_set1_epi64(0x0F0F0F0F0F0F0F0FLL);
    for (int i = 0; i < 16; ++i) {
      const __m512i a = v[i];
      const __m512i sw = _mm512_shuffle_i64x2(a, a, _MM_SHUFFLE(1, 0, 3, 2));
      __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(a, 4), sw), mask);
      t = _mm512_shuffle_i64x2(t, t, _MM_SHUFFLE(1, 0, 1, 0));
      v[i] = _mm512_xor_si512(
          a, _mm512_mask_blend_epi64(0xF0, _mm512_slli_epi64(t, 4), t));
    }
  }
  {
    const __m512i mask = _mm512_set1_epi64(0x3333333333333333LL);
    for (int i = 0; i < 16; ++i) {
      const __m512i a = v[i];
      const __m512i sw = _mm512_shuffle_i64x2(a, a, _MM_SHUFFLE(2, 3, 0, 1));
      __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(a, 2), sw), mask);
      t = _mm512_shuffle_i64x2(t, t, _MM_SHUFFLE(2, 2, 0, 0));
      v[i] = _mm512_xor_si512(
          a, _mm512_mask_blend_epi64(0xCC, _mm512_slli_epi64(t, 2), t));
    }
  }
  {
    const __m512i mask = _mm512_set1_epi64(0x5555555555555555LL);
    for (int i = 0; i < 16; ++i) {
      const __m512i a = v[i];
      const __m512i sw = _mm512_shuffle_epi32(
          a, static_cast<_MM_PERM_ENUM>(_MM_SHUFFLE(1, 0, 3, 2)));
      __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(a, 1), sw), mask);
      t = _mm512_shuffle_epi32(
          t, static_cast<_MM_PERM_ENUM>(_MM_SHUFFLE(1, 0, 1, 0)));
      v[i] = _mm512_xor_si512(
          a, _mm512_mask_blend_epi64(0xAA, _mm512_slli_epi64(t, 1), t));
    }
  }
  for (int i = 0; i < 8; ++i) _mm512_storeu_si512(m1 + 8 * i, v[i]);
  for (int i = 0; i < 8; ++i) _mm512_storeu_si512(m2 + 8 * i, v[8 + i]);
}

#endif  // GEAR_BITSLICED_X86_DISPATCH

// ---------------------------------------------------------------------------
// pack_gp row preparation + dispatch
// ---------------------------------------------------------------------------

const std::uint64_t* pack_gp_scalar(const std::uint64_t* a,
                                    const std::uint64_t* b, int count,
                                    int width, std::uint64_t* rows_g,
                                    std::uint64_t* rows_p) {
  const std::uint64_t vmask = core::width_mask(width);
  if (width <= 32) {
    for (int l = 0; l < count; ++l) {
      const std::uint64_t av = a[l] & vmask;
      const std::uint64_t bv = b[l] & vmask;
      rows_g[l] = (av & bv) | ((av ^ bv) << 32);
    }
    std::memset(rows_g + count, 0,
                static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
    transpose64_scalar(rows_g);
    return rows_g + 32;
  }
  for (int l = 0; l < count; ++l) {
    const std::uint64_t av = a[l] & vmask;
    const std::uint64_t bv = b[l] & vmask;
    rows_g[l] = av & bv;
    rows_p[l] = av ^ bv;
  }
  std::memset(rows_g + count, 0,
              static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
  std::memset(rows_p + count, 0,
              static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
  transpose64_scalar(rows_g);
  transpose64_scalar(rows_p);
  return rows_p;
}

#ifdef GEAR_BITSLICED_X86_DISPATCH

__attribute__((target("avx2"))) const std::uint64_t* pack_gp_avx2(
    const std::uint64_t* a, const std::uint64_t* b, int count, int width,
    std::uint64_t* rows_g, std::uint64_t* rows_p) {
  const std::uint64_t vmask = core::width_mask(width);
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(vmask));
  int l = 0;
  if (width <= 32) {
    for (; l + 4 <= count; l += 4) {
      const __m256i av = _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + l)), vm);
      const __m256i bv = _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + l)), vm);
      const __m256i r = _mm256_or_si256(
          _mm256_and_si256(av, bv),
          _mm256_slli_epi64(_mm256_xor_si256(av, bv), 32));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(rows_g + l), r);
    }
    for (; l < count; ++l) {
      const std::uint64_t av = a[l] & vmask;
      const std::uint64_t bv = b[l] & vmask;
      rows_g[l] = (av & bv) | ((av ^ bv) << 32);
    }
    std::memset(rows_g + count, 0,
                static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
    transpose64_avx2(rows_g);
    return rows_g + 32;
  }
  for (; l + 4 <= count; l += 4) {
    const __m256i av = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + l)), vm);
    const __m256i bv = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + l)), vm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rows_g + l),
                        _mm256_and_si256(av, bv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rows_p + l),
                        _mm256_xor_si256(av, bv));
  }
  for (; l < count; ++l) {
    const std::uint64_t av = a[l] & vmask;
    const std::uint64_t bv = b[l] & vmask;
    rows_g[l] = av & bv;
    rows_p[l] = av ^ bv;
  }
  std::memset(rows_g + count, 0,
              static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
  std::memset(rows_p + count, 0,
              static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
  transpose64_avx2(rows_g);
  transpose64_avx2(rows_p);
  return rows_p;
}

__attribute__((target("avx512f"))) const std::uint64_t* pack_gp_avx512(
    const std::uint64_t* a, const std::uint64_t* b, int count, int width,
    std::uint64_t* rows_g, std::uint64_t* rows_p) {
  const std::uint64_t vmask = core::width_mask(width);
  const __m512i vm = _mm512_set1_epi64(static_cast<long long>(vmask));
  int l = 0;
  if (width <= 32) {
    for (; l + 8 <= count; l += 8) {
      const __m512i av = _mm512_and_si512(_mm512_loadu_si512(a + l), vm);
      const __m512i bv = _mm512_and_si512(_mm512_loadu_si512(b + l), vm);
      const __m512i r = _mm512_or_si512(
          _mm512_and_si512(av, bv),
          _mm512_slli_epi64(_mm512_xor_si512(av, bv), 32));
      _mm512_storeu_si512(rows_g + l, r);
    }
    for (; l < count; ++l) {
      const std::uint64_t av = a[l] & vmask;
      const std::uint64_t bv = b[l] & vmask;
      rows_g[l] = (av & bv) | ((av ^ bv) << 32);
    }
    std::memset(rows_g + count, 0,
                static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
    transpose64_avx512(rows_g);
    return rows_g + 32;
  }
  for (; l + 8 <= count; l += 8) {
    const __m512i av = _mm512_and_si512(_mm512_loadu_si512(a + l), vm);
    const __m512i bv = _mm512_and_si512(_mm512_loadu_si512(b + l), vm);
    _mm512_storeu_si512(rows_g + l, _mm512_and_si512(av, bv));
    _mm512_storeu_si512(rows_p + l, _mm512_xor_si512(av, bv));
  }
  for (; l < count; ++l) {
    const std::uint64_t av = a[l] & vmask;
    const std::uint64_t bv = b[l] & vmask;
    rows_g[l] = av & bv;
    rows_p[l] = av ^ bv;
  }
  std::memset(rows_g + count, 0,
              static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
  std::memset(rows_p + count, 0,
              static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
  transpose64_avx512_pair(rows_g, rows_p);
  return rows_p;
}

using TransposeFn = void (*)(std::uint64_t*);
using PackGpFn = const std::uint64_t* (*)(const std::uint64_t*,
                                          const std::uint64_t*, int, int,
                                          std::uint64_t*, std::uint64_t*);

TransposeFn pick_transpose() {
  if (__builtin_cpu_supports("avx512f")) return transpose64_avx512;
  if (__builtin_cpu_supports("avx2")) return transpose64_avx2;
  return transpose64_scalar;
}

PackGpFn pick_pack_gp() {
  if (__builtin_cpu_supports("avx512f")) return pack_gp_avx512;
  if (__builtin_cpu_supports("avx2")) return pack_gp_avx2;
  return pack_gp_scalar;
}

#pragma GCC diagnostic pop

#endif  // GEAR_BITSLICED_X86_DISPATCH

}  // namespace

const char* bitsliced_dispatch_name() {
#ifdef GEAR_BITSLICED_X86_DISPATCH
  if (__builtin_cpu_supports("avx512f")) return "avx512";
  if (__builtin_cpu_supports("avx2")) return "avx2";
#endif
  return "scalar";
}

void transpose64(std::uint64_t m[64]) {
#ifdef GEAR_BITSLICED_X86_DISPATCH
  static const TransposeFn impl = pick_transpose();
  impl(m);
#else
  transpose64_scalar(m);
#endif
}

const std::uint64_t* pack_gp(const std::uint64_t* a, const std::uint64_t* b,
                             int count, int width, std::uint64_t rows_g[64],
                             std::uint64_t rows_p[64]) {
  assert(count >= 0 && count <= kBitslicedLanes);
  assert(width >= 1 && width <= 64);
  // Block/lane totals are fixed by the shard geometry (§5a), never by the
  // schedule — deterministic channel. The dispatch label is recorded at
  // run level (record_stream_obs) where one mutexed set per run is free;
  // the per-block path here stays at two relaxed atomic adds.
  GEAR_OBS_COUNT("bitsliced/pack_gp_calls", 1);
  GEAR_OBS_COUNT("bitsliced/lanes_packed", static_cast<std::uint64_t>(count));
#ifdef GEAR_BITSLICED_X86_DISPATCH
  static const PackGpFn impl = pick_pack_gp();
  return impl(a, b, count, width, rows_g, rows_p);
#else
  return pack_gp_scalar(a, b, count, width, rows_g, rows_p);
#endif
}

BitslicedLanes BitslicedLanes::pack(const std::uint64_t* values, int count,
                                    int width) {
  assert(count >= 0 && count <= kBitslicedLanes);
  assert(width >= 0 && width <= 64);
  std::uint64_t rows[64];
  const std::uint64_t vmask = core::width_mask(width);
  for (int l = 0; l < count; ++l) rows[l] = values[l] & vmask;
  std::memset(rows + count, 0,
              static_cast<std::size_t>(64 - count) * sizeof(std::uint64_t));
  transpose64(rows);
  BitslicedLanes out(width);
  std::memcpy(out.planes_, rows, static_cast<std::size_t>(width) * sizeof(std::uint64_t));
  return out;
}

void BitslicedLanes::unpack(const std::uint64_t* planes, int width,
                            std::uint64_t* out, int count) {
  assert(count >= 0 && count <= kBitslicedLanes);
  assert(width >= 0 && width <= 64);
  std::uint64_t rows[64];
  std::memcpy(rows, planes, static_cast<std::size_t>(width) * sizeof(std::uint64_t));
  std::memset(rows + width, 0,
              static_cast<std::size_t>(64 - width) * sizeof(std::uint64_t));
  transpose64(rows);
  std::memcpy(out, rows, static_cast<std::size_t>(count) * sizeof(std::uint64_t));
}

std::uint64_t BitslicedLanes::lane(int l) const {
  assert(l >= 0 && l < kBitslicedLanes);
  std::uint64_t v = 0;
  for (int p = 0; p < width_; ++p) v |= ((planes_[p] >> l) & 1ULL) << p;
  return v;
}

}  // namespace gear::stats
