// Bitsliced 64-lane batch evaluation substrate.
//
// Block-based adder error statistics are word-level boolean functions, so
// 64 independent Monte-Carlo trials can be evaluated per machine word:
// trial vectors are transposed ("bitsliced") so that plane p holds bit p
// of all 64 lanes, lane l in bit l. Gates and carry recurrences then run
// as plain bitwise ops over whole lane words. This file provides the lane
// layout plus fast pack/unpack (a 64x64 bit-matrix transpose); the actual
// kernels live next to the models they accelerate
// (core/bitsliced_adder.h, netlist/bitsliced_sim.h).
//
// Determinism: a bitsliced consumer packs *exactly* the vectors the
// scalar path would draw, in draw order — lane l of a block is trial
// (block_base + l) — so per-shard tallies, and therefore the §5a
// shard/merge contract, are bit-identical to the scalar engine. See
// DESIGN.md, "Bitsliced lane layout".
#pragma once

#include <cstdint>

#include "core/width.h"

namespace gear::stats {

/// Number of lanes in one bitsliced block — one trial per bit of a word.
inline constexpr int kBitslicedLanes = 64;

/// Mask with one bit set per live lane when a block holds `count` < 64
/// trials (tail block of a shard whose size is not a multiple of 64).
constexpr std::uint64_t lane_mask(int count) {
  return core::width_mask(count);
}

/// In-place 64x64 bit-matrix transpose: element (r, c) — bit c of m[r] —
/// moves to (c, r). Involution, ~6*32 delta-swaps total (≈3 word ops per
/// row), the cost that keeps packing from eating the 64x kernel speedup.
/// Runtime-dispatches to an AVX-512/AVX2 kernel on x86-64 hosts that
/// support one (identical results, ~4x faster).
void transpose64(std::uint64_t m[64]);

/// Which transpose/pack kernel the runtime dispatch picks on this host:
/// "avx512", "avx2" or "scalar". Also exported as the observability
/// label "bitsliced/dispatch".
const char* bitsliced_dispatch_name();

/// Fused generate/propagate packing for word-level adder kernels: computes
/// g = a&b and p = a^b (operands masked to `width` bits) for `count` <= 64
/// lane pairs and transposes both into bit planes. Bitwise ops commute
/// with the lane transpose, so g/p are formed on the untransposed rows;
/// for width <= 32 both plane sets share one transpose (g in columns
/// 0..31, p in columns 32..63 of `rows_g`), halving the dominant cost of
/// a batch. g planes are always rows_g[0..width); the returned pointer is
/// the base of the p planes (rows_g + 32 or rows_p). Lanes >= count and
/// planes >= width read 0.
const std::uint64_t* pack_gp(const std::uint64_t* a, const std::uint64_t* b,
                             int count, int width, std::uint64_t rows_g[64],
                             std::uint64_t rows_p[64]);

/// 64 lanes of packed bit-planes: plane(p) holds bit p of every lane.
class BitslicedLanes {
 public:
  /// Packs `count` <= 64 values of `width` <= 64 bits into planes; lanes
  /// >= count and planes >= width read 0. values[i] lands in lane i, so
  /// draw order is preserved.
  static BitslicedLanes pack(const std::uint64_t* values, int count, int width);

  /// Unpacks `count` lanes of `width` planes back into scalar values
  /// (lane i -> out[i]); the inverse of pack.
  static void unpack(const std::uint64_t* planes, int width,
                     std::uint64_t* out, int count);

  explicit BitslicedLanes(int width = 0) : width_(width) {
    for (int p = 0; p < width_; ++p) planes_[p] = 0;
  }

  int width() const { return width_; }
  std::uint64_t plane(int p) const { return planes_[p]; }
  std::uint64_t* data() { return planes_; }
  const std::uint64_t* data() const { return planes_; }

  /// Value of lane l (bit-gather across planes; prefer unpack for bulk).
  std::uint64_t lane(int l) const;

 private:
  int width_ = 0;
  std::uint64_t planes_[kBitslicedLanes];
};

}  // namespace gear::stats
