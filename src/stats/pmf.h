// Exact probability mass functions over sparse integer keys.
//
// Pmf is the probability-valued twin of SparseHistogram: the same sparse
// signed-integer key domain (error distances of an N-bit adder concentrate
// on a handful of dyadic magnitudes), but with double masses instead of
// sample counts, so analytic engines (core::exact_error_distribution) can
// return distributions with no sampling noise. The accessor surface
// mirrors SparseHistogram (entries / mean / mean_abs / min_key / max_key /
// fraction_zero) so downstream metric code treats the two uniformly.
#pragma once

#include <cstdint>
#include <map>

#include "stats/histogram.h"

namespace gear::stats {

/// Exact probability masses over sparse integer keys.
class Pmf {
 public:
  void add(std::int64_t key, double mass);

  /// Key-wise addition of another Pmf's masses (e.g. mixture components
  /// with pre-scaled weights). Merge order never matters.
  void merge(const Pmf& other);

  /// Sum of all masses. 1.0 (up to rounding) for a full distribution.
  double total_mass() const { return total_; }
  double mass(std::int64_t key) const;
  std::size_t distinct() const { return masses_.size(); }
  const std::map<std::int64_t, double>& entries() const { return masses_; }

  double mean() const;
  /// Mean of |key| — the Mean Error Distance when keys are signed errors.
  double mean_abs() const;
  std::int64_t min_key() const;
  std::int64_t max_key() const;
  /// Mass at key == 0 (i.e. probability of an exact result).
  double fraction_zero() const { return mass(0); }

  /// The empirical Pmf of a histogram: count / total per key. Lets
  /// analytic and Monte-Carlo distributions share comparison code.
  static Pmf from_histogram(const SparseHistogram& hist);

 private:
  std::map<std::int64_t, double> masses_;
  double total_ = 0.0;
};

}  // namespace gear::stats
