// Bootstrap confidence intervals for simulated error statistics.
//
// Monte-Carlo error probabilities in EXPERIMENTS.md are reported with a 95%
// CI so paper-vs-measured comparisons distinguish model error from sampling
// noise.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.h"

namespace gear::stats {

struct ConfidenceInterval {
  double point = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;

  bool contains(double x) const { return x >= lo && x <= hi; }
};

/// Percentile-bootstrap CI for the mean of `samples`.
ConfidenceInterval bootstrap_mean_ci(const std::vector<double>& samples,
                                     int resamples, double level, Rng& rng);

/// Exact (Wilson score) CI for a binomial proportion — preferred for error
/// probabilities, where samples are Bernoulli and bootstrap is wasteful.
ConfidenceInterval wilson_ci(std::uint64_t successes, std::uint64_t trials,
                             double level = 0.95);

}  // namespace gear::stats
