// Numerically stable streaming statistics (Welford) with merge support.
#pragma once

#include <cstdint>

namespace gear::stats {

/// Accumulates count / mean / variance / min / max of a stream of doubles
/// in a single pass using Welford's algorithm. Two accumulators can be
/// merged, which the benchmark harness uses to combine shards.
class RunningStats {
 public:
  void add(double x);

  /// Combines another accumulator into this one (parallel merge).
  void merge(const RunningStats& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (divide by n).
  double variance() const;
  /// Sample variance (divide by n-1); 0 when n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gear::stats
