#include "analysis/pareto.h"

#include <algorithm>
#include <map>
#include <tuple>

namespace gear::analysis {

bool dominates(const DesignCandidate& a, const DesignCandidate& b) {
  const bool no_worse = a.delay_ns <= b.delay_ns && a.area_luts <= b.area_luts &&
                        a.error <= b.error;
  const bool better = a.delay_ns < b.delay_ns || a.area_luts < b.area_luts ||
                      a.error < b.error;
  return no_worse && better;
}

namespace {

using Triple = std::tuple<double, double, double>;  // (delay, area, error)

/// Staircase of 2D (area, error) minima: keys strictly increase, mapped
/// errors strictly decrease. Inserting keeps only entries that are 2D
/// non-dominated (weak dominance prunes).
void stair_insert(std::map<double, double>& stair, double area, double error) {
  auto it = stair.lower_bound(area);
  if (it != stair.begin() && std::prev(it)->second <= error) return;
  if (it != stair.end() && it->first == area) {
    if (it->second <= error) return;
    it->second = error;
  } else {
    it = stair.emplace_hint(it, area, error);
  }
  for (auto nxt = std::next(it); nxt != stair.end() && nxt->second >= error;) {
    nxt = stair.erase(nxt);
  }
}

/// True iff some staircase entry weakly dominates (area, error) in 2D.
bool stair_covers(const std::map<double, double>& stair, double area,
                  double error) {
  auto it = stair.upper_bound(area);
  return it != stair.begin() && std::prev(it)->second <= error;
}

}  // namespace

std::vector<DesignCandidate> pareto_front(std::vector<DesignCandidate> points) {
  // Dominance is a relation on value triples — duplicates of a
  // non-dominated triple never dominate each other, so all of them stay
  // in the front. Decide each *distinct* triple once, then filter the
  // input by verdict, preserving input order.
  //
  // Sweep distinct triples in lexicographic (delay, area, error) order:
  // any dominator of T is componentwise <= T and distinct, hence strictly
  // lex-before T, so at the moment T is visited the staircase holds the
  // (area, error) minima of exactly the candidate dominators (all with
  // delay <= T's). T is dominated iff some processed triple has
  // area <= T.area and error <= T.error. O(n log n) total.
  std::vector<Triple> distinct;
  distinct.reserve(points.size());
  for (const auto& p : points) {
    distinct.emplace_back(p.delay_ns, p.area_luts, p.error);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());

  std::map<Triple, bool> non_dominated;
  std::map<double, double> stair;
  for (const Triple& t : distinct) {
    const auto [delay, area, error] = t;
    non_dominated.emplace(t, !stair_covers(stair, area, error));
    stair_insert(stair, area, error);
  }

  std::vector<DesignCandidate> front;
  for (auto& p : points) {
    if (non_dominated.at({p.delay_ns, p.area_luts, p.error})) {
      front.push_back(std::move(p));
    }
  }
  return front;
}

}  // namespace gear::analysis
