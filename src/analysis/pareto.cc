#include "analysis/pareto.h"

#include <utility>

namespace gear::analysis {

bool dominates(const DesignCandidate& a, const DesignCandidate& b) {
  const bool no_worse = a.delay_ns <= b.delay_ns && a.area_luts <= b.area_luts &&
                        a.error <= b.error;
  const bool better = a.delay_ns < b.delay_ns || a.area_luts < b.area_luts ||
                      a.error < b.error;
  return no_worse && better;
}

namespace {

/// Strict dominance on raw triples, shared by the query and insert paths
/// so both compare with the exact same float operations.
inline bool strictly_dominates(const DesignCandidate& a, double delay_ns,
                               double area_luts, double error) {
  return a.delay_ns <= delay_ns && a.area_luts <= area_luts &&
         a.error <= error &&
         (a.delay_ns < delay_ns || a.area_luts < area_luts || a.error < error);
}

}  // namespace

bool StreamingParetoFront::strictly_dominated(double delay_ns,
                                              double area_luts,
                                              double error) const {
  for (const DesignCandidate& m : points_) {
    if (strictly_dominates(m, delay_ns, area_luts, error)) return true;
  }
  return false;
}

bool StreamingParetoFront::insert(DesignCandidate candidate) {
  // Invariant: points_ holds exactly the inserted points not strictly
  // dominated by any inserted point, in arrival order. Rejection is
  // final: the dominator can only ever be evicted by a point that
  // transitively dominates the rejected one too.
  if (strictly_dominated(candidate.delay_ns, candidate.area_luts,
                         candidate.error)) {
    return false;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (!strictly_dominates(candidate, points_[i].delay_ns,
                            points_[i].area_luts, points_[i].error)) {
      if (kept != i) points_[kept] = std::move(points_[i]);
      ++kept;
    }
  }
  points_.resize(kept);
  points_.push_back(std::move(candidate));
  return true;
}

std::vector<DesignCandidate> pareto_front(std::vector<DesignCandidate> points) {
  // Dominance is a relation on value triples — duplicates of a
  // non-dominated triple never dominate each other, so all of them stay
  // in the front. The streaming front's final membership is "not
  // strictly dominated by any input point", the historical quadratic
  // definition; feeding in input order makes the arrival order the input
  // order.
  StreamingParetoFront front;
  for (auto& p : points) front.insert(std::move(p));
  return front.release();
}

}  // namespace gear::analysis
