#include "analysis/pareto.h"

namespace gear::analysis {

bool dominates(const DesignCandidate& a, const DesignCandidate& b) {
  const bool no_worse = a.delay_ns <= b.delay_ns && a.area_luts <= b.area_luts &&
                        a.error <= b.error;
  const bool better = a.delay_ns < b.delay_ns || a.area_luts < b.area_luts ||
                      a.error < b.error;
  return no_worse && better;
}

std::vector<DesignCandidate> pareto_front(std::vector<DesignCandidate> points) {
  std::vector<DesignCandidate> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(points[i]);
  }
  return front;
}

}  // namespace gear::analysis
