// Error propagation through compositions of approximate adders.
//
// A single adder's Perr (paper Section 3.2) answers "one addition"; real
// kernels chain and tree many. These helpers give closed-form bounds for
// the two canonical shapes, under the conservative assumption that any
// constituent error makes the composite result wrong (no masking):
//
//  * accumulation chains (prefix sums, MACs): n sequential adds;
//  * balanced reduction trees (adder trees): leaves-1 adds.
//
// Masking makes these upper bounds; the bench/tests quantify the gap by
// simulation. The i.i.d.-operand caveat applies: chained operands are
// correlated, which in practice reduces the rate further (see
// bench_ext_multiplier).
#pragma once

#include <cstdint>

namespace gear::analysis {

/// P(at least one of `adds` independent additions errs) = 1-(1-p)^adds.
double composed_error_bound(double per_add_probability, std::uint64_t adds);

/// Additions performed by an accumulation chain over `terms` values.
std::uint64_t chain_adds(std::uint64_t terms);

/// Additions performed by a balanced reduction tree over `leaves` values.
std::uint64_t tree_adds(std::uint64_t leaves);

/// Expected error magnitude of a chain of `adds` additions when each add
/// contributes `per_add_med` independently (linearity; exact, not a
/// bound, under no-masking).
double composed_med(double per_add_med, std::uint64_t adds);

}  // namespace gear::analysis
