// Configuration selection: the designer workflow the paper proposes.
//
// "The wide variety of adders poses a challenging decision to a designer
// on how to select a particular adder that meets the design constraints
// while still achieving the required accuracy level." — Section 1.
//
// select_config() answers that question programmatically: enumerate the
// (strict + relaxed) GeAr space at width N, keep the configurations whose
// analytic error probability meets the requirement, synthesize the
// survivors, and return the best under the chosen objective. No candidate
// is ever simulated — only the error model and STA are consulted.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "analysis/dse_cache.h"
#include "core/config.h"
#include "synth/timing.h"

namespace gear::analysis {

enum class Objective {
  kDelay,      ///< minimise critical-path delay
  kArea,       ///< minimise LUT count
  kDelayArea,  ///< minimise delay * area
};

struct SelectionRequest {
  int n = 16;
  double max_error_probability = 0.01;
  Objective objective = Objective::kDelay;
  bool include_relaxed = true;
  /// Synthesize with detection logic included (costs area/err path).
  bool with_detection = false;
};

/// The ranking tier that separated a result from its successor in rank
/// order — the "deciding figure" a designer reading the short-list needs
/// named explicitly (a workload-aware sweep can rank two configs on
/// figures the uniform table would call ties, and vice versa).
enum class TieBreak : std::uint8_t {
  kNone,         ///< last (or only) entry — nothing below it to separate
  kScore,        ///< objective score differed
  kArea,         ///< equal score, smaller area won
  kWorkloadMed,  ///< model-conditioned exact MED (workload-aware sweeps only)
  kUniformMed,   ///< uniform exact MED (workload-aware sweeps only)
  kWiderR,       ///< all figures equal, larger R won
  kNarrowerP,    ///< final tier: smaller P won
};
const char* tie_break_name(TieBreak t);

struct SelectedConfig {
  explicit SelectedConfig(core::GeArConfig c) : cfg(std::move(c)) {}

  core::GeArConfig cfg;
  double error_probability = 0.0;
  double delay_ns = 0.0;
  int area_luts = 0;
  double score = 0.0;
  /// Exact error magnitudes from the closed-form PMF metrics
  /// (core::exact_error_metrics) — no sampling involved. Conditioned on
  /// the SweepContext model when one is present (workload_aware below),
  /// uniform otherwise.
  double exact_med = 0.0;
  double exact_ned = 0.0;        ///< MED / max error distance
  double exact_ned_range = 0.0;  ///< MED / (2^N - 1)
  /// Uniform-operand reference figures. Equal to error_probability /
  /// exact_med on uniform sweeps; on workload-aware sweeps they keep the
  /// distribution-free values so the divergence the model corrects stays
  /// visible per candidate.
  double uniform_error_probability = 0.0;
  double uniform_med = 0.0;
  /// True iff the figures above were conditioned on a (non-uniform)
  /// SweepContext model.
  bool workload_aware = false;
  /// Which tier separated this entry from the next one in rank order
  /// (kNone for the last entry).
  TieBreak decided_by = TieBreak::kNone;
};

/// Best configuration meeting the requirement, or nullopt when only the
/// exact adder qualifies and `n` has no approximate config under the
/// bound. Deterministic: the ranking comparator is a strict total order
/// (score, then area, then — on workload-aware sweeps — conditioned MED
/// and uniform MED, then larger R, then smaller P; candidates are unique
/// by (R, P)), so the result is identical for every SweepContext —
/// serial or parallel, cached or not. With ctx.model set to a
/// non-uniform OperandModel the filter bound applies to the conditioned
/// exact error probability and the ranking figures are workload-aware;
/// a null or uniform model reproduces the uniform sweep bit for bit.
std::optional<SelectedConfig> select_config(const SelectionRequest& request);
std::optional<SelectedConfig> select_config(const SelectionRequest& request,
                                            const SweepContext& ctx);

/// All qualifying configurations, sorted by score (best first) — the full
/// short-list a designer would review. The SweepContext overload
/// evaluates candidates on the executor and synthesizes through the
/// cache; the result is bit-identical to the serial uncached sweep.
std::vector<SelectedConfig> rank_configs(const SelectionRequest& request);
std::vector<SelectedConfig> rank_configs(const SelectionRequest& request,
                                         const SweepContext& ctx);

}  // namespace gear::analysis
