#include "analysis/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace gear::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  auto emit_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += "\"";
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c ? "," : "") << quote(headers_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << quote(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

std::string fmt_sci(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*E", digits, v);
  return buf;
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_pct(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

}  // namespace gear::analysis
