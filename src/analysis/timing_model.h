// Application execution-time model (paper Section 4.4, Table IV, Fig. 9).
//
// An application performing `ops` additions on an adder with path delay d
// takes ops*d seconds without correction. With the error-recovery scheme,
// an erroneous addition costs extra cycles; the paper brackets this with
// three scenarios applied to the error probability Perr:
//   best:    every erroneous addition has exactly 1 faulty sub-adder
//            -> ops*d*(1 + Perr*1)
//   average: half the sub-adders faulty -> ops*d*(1 + Perr*k/2)
//   worst:   all k-1 correctable sub-adders faulty
//            -> ops*d*(1 + Perr*(k-1))
// (verified against Table IV's GeAr rows to 6 significant digits).
#pragma once

#include <cstdint>
#include <vector>

namespace gear::analysis {

/// Full-HD frame, one addition per pixel — the paper's workload size.
inline constexpr std::uint64_t kFullHdOps = 1920ULL * 1080ULL;

struct ExecutionTiming {
  double approx_s = 0.0;
  double best_s = 0.0;
  double average_s = 0.0;
  double worst_s = 0.0;
};

/// Evaluates the model for an adder with `k` sub-adders.
ExecutionTiming execution_timing(double delay_ns, double error_probability,
                                 int k, std::uint64_t ops = kFullHdOps);

/// Expected time given a distribution over simultaneous faulty-sub-adder
/// counts (index = count), e.g. from core::mc_detect_count_distribution —
/// tighter than the three brackets above.
double expected_time_s(double delay_ns, const std::vector<double>& count_pmf,
                       std::uint64_t ops = kFullHdOps);

}  // namespace gear::analysis
