// Pareto-frontier extraction for design-space studies.
//
// Points are compared on (delay, area, error): all three minimised. Used
// by the design-space example and the ablation benches to show which GeAr
// configurations dominate the baselines.
#pragma once

#include <string>
#include <vector>

namespace gear::analysis {

struct DesignCandidate {
  std::string label;
  double delay_ns = 0.0;
  double area_luts = 0.0;
  double error = 0.0;  ///< any monotone error figure (Perr, NED, ...)
};

/// True iff `a` dominates `b` (no worse on all axes, better on one).
bool dominates(const DesignCandidate& a, const DesignCandidate& b);

/// Non-dominated subset, in the input order.
std::vector<DesignCandidate> pareto_front(std::vector<DesignCandidate> points);

}  // namespace gear::analysis
