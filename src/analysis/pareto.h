// Pareto-frontier extraction for design-space studies.
//
// Points are compared on (delay, area, error): all three minimised. Used
// by the design-space example and the ablation benches to show which GeAr
// configurations dominate the baselines.
//
// Two forms share one semantics:
//
//  * StreamingParetoFront — incremental: insert candidates as they
//    complete; the front always holds exactly the points not strictly
//    dominated by any point inserted so far, in arrival order. A point
//    once evicted (or rejected) can never re-enter: its dominator may
//    itself be evicted later, but only by a transitively stronger point
//    (strict dominance is transitive), so the verdict is final. This is
//    what makes the branch-and-bound pruner in explore_hetero sound: a
//    candidate whose *lower bound* is strictly dominated by a current
//    member can be dropped without ever computing its true value.
//  * pareto_front — batch wrapper over the streaming front; identical to
//    the historical quadratic definition ("a point survives iff no other
//    point dominates it"), including duplicate/tie semantics: duplicates
//    of a non-dominated triple never dominate each other, so every copy
//    stays, in input order (pinned by test_pareto.cc).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gear::analysis {

struct DesignCandidate {
  std::string label;
  double delay_ns = 0.0;
  double area_luts = 0.0;
  double error = 0.0;  ///< any monotone error figure (Perr, NED, ...)
};

/// True iff `a` dominates `b` (no worse on all axes, better on one).
bool dominates(const DesignCandidate& a, const DesignCandidate& b);

/// Incremental Pareto front over (delay, area, error), all minimised.
class StreamingParetoFront {
 public:
  /// True iff some current member strictly dominates (delay, area,
  /// error). Such a point would be rejected by insert(); a branch-and-
  /// bound caller may also use this on a componentwise *lower bound* to
  /// discard the candidate outright (the true point is only worse).
  bool strictly_dominated(double delay_ns, double area_luts,
                          double error) const;

  /// Inserts a completed candidate: rejected (returns false) iff a
  /// current member strictly dominates it; otherwise evicts every member
  /// it strictly dominates and appends, returning true. Ties and
  /// duplicates are never rejected or evicted — only strict dominance
  /// removes points, matching the batch semantics.
  bool insert(DesignCandidate candidate);

  /// Current front, in arrival (insertion) order.
  const std::vector<DesignCandidate>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Moves the front out, leaving the object empty.
  std::vector<DesignCandidate> release() { return std::move(points_); }

 private:
  std::vector<DesignCandidate> points_;
};

/// Non-dominated subset, in the input order.
std::vector<DesignCandidate> pareto_front(std::vector<DesignCandidate> points);

}  // namespace gear::analysis
