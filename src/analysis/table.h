// ASCII / CSV table formatting for the benchmark binaries.
//
// Every bench prints the same rows the paper's table prints, so
// EXPERIMENTS.md can be filled by diffing bench output against the paper.
#pragma once

#include <string>
#include <vector>

namespace gear::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Monospace table with aligned columns.
  std::string to_ascii() const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Scientific notation like the paper's tables, e.g. "2.604442E-03".
std::string fmt_sci(double v, int digits = 6);

/// Fixed-point with `digits` decimals.
std::string fmt_fixed(double v, int digits = 4);

/// Percentage with `digits` decimals, e.g. "2.9297%".
std::string fmt_pct(double fraction, int digits = 4);

}  // namespace gear::analysis
