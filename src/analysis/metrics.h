// Accuracy metrics over an operand stream (paper Section 4.2).
//
// Metric definitions, matching the paper's citations:
//  * ED (error distance): |approx - exact| per addition.
//  * MED: mean ED over the stream.
//  * NED: MED normalised by the adder's worst observed ED over the stream
//    (Liang-style normalisation by maximum error magnitude); we also
//    report MED / (2^N - 1) for a distribution-independent variant.
//  * ACC_amp (Kahng/Kang [10]): 1 - ED/exact, clamped to [0,1]; defined as
//    1 when the exact sum is 0 and the result is exact, 0 otherwise.
//  * ACC_inf (Zhu [9]): fraction of the N+1 result bits that are correct.
//  * MAA acceptance (paper's "MAA x%" rows): fraction of additions whose
//    ACC_amp meets the threshold.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adders/adder.h"
#include "stats/distributions.h"

namespace gear::analysis {

struct ErrorMetrics {
  std::uint64_t samples = 0;
  double error_rate = 0.0;  ///< fraction of additions with ED > 0
  double med = 0.0;
  double max_ed = 0.0;
  double ned = 0.0;       ///< med / max_ed (0 when error-free)
  double ned_range = 0.0; ///< med / (2^N - 1)
  double acc_amp_avg = 0.0;
  double acc_inf_avg = 0.0;
  /// acceptance[i] pairs with the thresholds passed to evaluate().
  std::vector<double> maa_acceptance;
};

/// Paper's Table I threshold ladder: 100, 97.5, 95, 92.5, 90 (percent).
std::vector<double> default_maa_thresholds();

/// Runs `samples` additions from `source` through `adder` and accumulates
/// every metric. `maa_thresholds` are ACC_amp levels in percent.
///
/// Degenerate-input conventions (all pinned by MetricsConventions tests,
/// chosen so no field is ever NaN/Inf):
///  * Error-free stream: max_ed == 0 makes NED's defining ratio 0/0; we
///    define ned = 0 ("no normalised error"), matching ned_range, rather
///    than propagate NaN into Delay x NED style products.
///  * samples == 0: returns all-zero metrics with maa_acceptance sized to
///    the thresholds (an empty stream accepts nothing), instead of 0/0.
///  * All-rejected MAA: a threshold no addition meets yields exactly 0.0,
///    never a NaN — acceptance counts divide by the sample count only.
ErrorMetrics evaluate(const adders::ApproxAdder& adder, stats::OperandSource& source,
                      std::uint64_t samples, const std::vector<double>& maa_thresholds =
                                                 default_maa_thresholds());

}  // namespace gear::analysis
