#include "analysis/timing_model.h"

#include <vector>

namespace gear::analysis {

ExecutionTiming execution_timing(double delay_ns, double error_probability,
                                 int k, std::uint64_t ops) {
  const double base = static_cast<double>(ops) * delay_ns * 1e-9;
  ExecutionTiming t;
  t.approx_s = base;
  t.best_s = base * (1.0 + error_probability);
  t.average_s = base * (1.0 + error_probability * static_cast<double>(k) / 2.0);
  t.worst_s = base * (1.0 + error_probability * static_cast<double>(k - 1));
  return t;
}

double expected_time_s(double delay_ns, const std::vector<double>& count_pmf,
                       std::uint64_t ops) {
  double expected_cycles = 0.0;
  for (std::size_t c = 0; c < count_pmf.size(); ++c) {
    expected_cycles += count_pmf[c] * (1.0 + static_cast<double>(c));
  }
  return static_cast<double>(ops) * delay_ns * 1e-9 * expected_cycles;
}

}  // namespace gear::analysis
