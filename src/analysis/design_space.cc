#include "analysis/design_space.h"

#include "core/error_model.h"

namespace gear::analysis {

std::vector<AccuracyPoint> accuracy_sweep(int n, int r) {
  std::vector<AccuracyPoint> out;
  for (const auto& cfg : core::GeArConfig::enumerate_relaxed_r(n, r)) {
    AccuracyPoint pt{cfg, 0.0, 0.0, false, false};
    pt.error_probability = core::paper_error_probability(cfg);
    pt.accuracy_percent = (1.0 - pt.error_probability) * 100.0;
    pt.gda_reachable = core::family_supports(core::AdderFamily::kGda, cfg);
    pt.etaii_reachable = core::family_supports(core::AdderFamily::kEtaII, cfg);
    out.push_back(std::move(pt));
  }
  return out;
}

std::vector<FamilyCoverage> coverage_comparison(int n, int r) {
  using core::AdderFamily;
  std::vector<FamilyCoverage> out;
  for (AdderFamily family :
       {AdderFamily::kAcaI, AdderFamily::kEtaII, AdderFamily::kAcaII,
        AdderFamily::kGda, AdderFamily::kGearStrict, AdderFamily::kGearRelaxed}) {
    out.push_back({family, core::reachable_p_values(family, n, r)});
  }
  return out;
}

}  // namespace gear::analysis
