#include "analysis/design_space.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <limits>
#include <optional>
#include <string>

#include "core/error_model.h"
#include "netlist/circuits.h"
#include "obs/metrics.h"
#include "synth/report.h"

namespace gear::analysis {

namespace {

AccuracyPoint accuracy_point(const core::GeArConfig& cfg) {
  AccuracyPoint pt{cfg, 0.0, 0.0, false, false};
  pt.error_probability = core::paper_error_probability(cfg);
  pt.accuracy_percent = (1.0 - pt.error_probability) * 100.0;
  pt.gda_reachable = core::family_supports(core::AdderFamily::kGda, cfg);
  pt.etaii_reachable = core::family_supports(core::AdderFamily::kEtaII, cfg);
  return pt;
}

constexpr core::AdderFamily kCoverageFamilies[] = {
    core::AdderFamily::kAcaI,      core::AdderFamily::kEtaII,
    core::AdderFamily::kAcaII,     core::AdderFamily::kGda,
    core::AdderFamily::kCesa,      core::AdderFamily::kGearStrict,
    core::AdderFamily::kGearRelaxed};

}  // namespace

std::vector<AccuracyPoint> accuracy_sweep(int n, int r,
                                          const SweepContext& ctx) {
  const auto cfgs = core::GeArConfig::enumerate_relaxed_r(n, r);
  std::vector<AccuracyPoint> out;
  out.reserve(cfgs.size());
  if (ctx.executor != nullptr && cfgs.size() > 1) {
    // optional<> only because AccuracyPoint is not default-constructible.
    auto pts = ctx.executor->map<std::optional<AccuracyPoint>>(
        cfgs.size(), [&](std::size_t i) { return accuracy_point(cfgs[i]); });
    for (auto& pt : pts) out.push_back(std::move(*pt));
    return out;
  }
  for (const auto& cfg : cfgs) out.push_back(accuracy_point(cfg));
  return out;
}

std::vector<AccuracyPoint> accuracy_sweep(int n, int r) {
  return accuracy_sweep(n, r, SweepContext{});
}

std::vector<FamilyCoverage> coverage_comparison(int n, int r,
                                                const SweepContext& ctx) {
  constexpr std::size_t kFamilies = std::size(kCoverageFamilies);
  if (ctx.executor != nullptr) {
    return ctx.executor->map<FamilyCoverage>(kFamilies, [&](std::size_t i) {
      return FamilyCoverage{kCoverageFamilies[i],
                            core::reachable_p_values(kCoverageFamilies[i], n, r)};
    });
  }
  std::vector<FamilyCoverage> out;
  out.reserve(kFamilies);
  for (core::AdderFamily family : kCoverageFamilies) {
    out.push_back({family, core::reachable_p_values(family, n, r)});
  }
  return out;
}

std::vector<FamilyCoverage> coverage_comparison(int n, int r) {
  return coverage_comparison(n, r, SweepContext{});
}

// ---------------------------------------------------------------------------
// Heterogeneous segment-tiling space
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kSat = std::numeric_limits<std::uint64_t>::max();

/// Saturating add: once a subtree count reaches UINT64_MAX it stays
/// there. Decoding stays correct because saturation is monotone — a
/// saturated count can never be exceeded by a representable index, so
/// the decoder always descends into it rather than skipping past it.
inline std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return a > kSat - b ? kSat : a + b;
}

}  // namespace

HeteroSpace::HeteroSpace(const HeteroSpaceSpec& spec) : spec_(spec) {
  // Normalize the bounds once so the DP loops below need no clamping.
  spec_.min_l0 = std::max(1, spec_.min_l0);
  spec_.max_l0 = std::min(spec_.max_l0, spec_.n - 1);
  spec_.min_r = std::max(1, spec_.min_r);
  spec_.min_p = std::max(1, spec_.min_p);
  spec_.max_l = std::min(spec_.max_l, spec_.n);
  if (spec_.n < 2 || spec_.n > 63 || spec_.max_k < 2 ||
      spec_.min_l0 > spec_.max_l0) {
    return;  // empty space: size() == 0, counts_ empty
  }
  const int n = spec_.n;
  max_segs_ = std::min(spec_.max_k - 1, n);

  // Bottom-up fill in res_lo-descending order: count(res_lo, pw, used)
  // only reads rows with larger res_lo (every segment consumes >= 1
  // result bit). State res_lo == n is the completed-tiling base case.
  counts_.assign(static_cast<std::size_t>(n + 1) * static_cast<std::size_t>(n) *
                     static_cast<std::size_t>(max_segs_ + 1),
                 0);
  const auto at = [&](int res_lo, int pw, int used) -> std::uint64_t& {
    return counts_[(static_cast<std::size_t>(res_lo) *
                        static_cast<std::size_t>(n) +
                    static_cast<std::size_t>(pw)) *
                       static_cast<std::size_t>(max_segs_ + 1) +
                   static_cast<std::size_t>(used)];
  };
  for (int pw = 0; pw < n; ++pw) {
    for (int used = 0; used <= max_segs_; ++used) at(n, pw, used) = 1;
  }
  for (int res_lo = n - 1; res_lo >= 1; --res_lo) {
    for (int pw = 0; pw < n; ++pw) {
      for (int used = max_segs_ - 1; used >= 0; --used) {
        std::uint64_t total = 0;
        const int r_hi = std::min(spec_.max_r, n - res_lo);
        for (int r = spec_.min_r; r <= r_hi; ++r) {
          const int p_hi =
              std::min({spec_.max_p, spec_.max_l - r, res_lo - pw});
          for (int p = spec_.min_p; p <= p_hi; ++p) {
            total = sat_add(total, at(res_lo + r, res_lo - p, used + 1));
          }
        }
        at(res_lo, pw, used) = total;
      }
      // used == max_segs_ rows stay 0 for res_lo < n: no segments left.
    }
  }
  for (int l0 = spec_.min_l0; l0 <= spec_.max_l0; ++l0) {
    size_ = sat_add(size_, count_from(l0, 0, 0));
  }
}

std::uint64_t HeteroSpace::count_from(int res_lo, int prev_win_lo,
                                      int segs_used) const {
  if (counts_.empty()) return 0;
  const int n = spec_.n;
  if (res_lo == n) return 1;
  if (segs_used >= max_segs_) return 0;
  return counts_[(static_cast<std::size_t>(res_lo) *
                      static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(prev_win_lo)) *
                     static_cast<std::size_t>(max_segs_ + 1) +
                 static_cast<std::size_t>(segs_used)];
}

core::GeArConfig HeteroSpace::decode(std::uint64_t index) const {
  if (index >= size_) {
    std::fprintf(stderr,
                 "HeteroSpace::decode(%llu): index out of range (size %llu)\n",
                 static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(size_));
    std::abort();
  }
  // Peel l0 first, then one (r, p) pair per segment, always in the
  // ranking order (l0 asc; r asc, p asc): skip a subtree iff the index
  // lies past all of its layouts.
  int l0 = spec_.min_l0;
  for (; l0 < spec_.max_l0; ++l0) {
    const std::uint64_t c = count_from(l0, 0, 0);
    if (index < c) break;
    index -= c;
  }
  std::vector<core::GeArConfig::Segment> segments;
  int res_lo = l0;
  int prev_win_lo = 0;
  int used = 0;
  while (res_lo < spec_.n) {
    bool chosen = false;
    const int r_hi = std::min(spec_.max_r, spec_.n - res_lo);
    for (int r = spec_.min_r; r <= r_hi && !chosen; ++r) {
      const int p_hi =
          std::min({spec_.max_p, spec_.max_l - r, res_lo - prev_win_lo});
      for (int p = spec_.min_p; p <= p_hi; ++p) {
        const std::uint64_t c = count_from(res_lo + r, res_lo - p, used + 1);
        if (index < c) {
          segments.push_back({r, p});
          prev_win_lo = res_lo - p;
          res_lo += r;
          ++used;
          chosen = true;
          break;
        }
        index -= c;
      }
    }
    if (!chosen) {
      std::fprintf(stderr, "HeteroSpace::decode: ranking walk exhausted\n");
      std::abort();  // unreachable: index < subtree count by construction
    }
  }
  return core::GeArConfig::must_custom(spec_.n, l0, segments);
}

std::optional<std::uint64_t> HeteroSpace::encode(
    const core::GeArConfig& cfg) const {
  const auto& layout = cfg.layout();
  if (cfg.n() != spec_.n || layout.size() < 2 ||
      static_cast<int>(layout.size()) > spec_.max_k) {
    return std::nullopt;
  }
  const int l0 = layout[0].res_hi + 1;
  if (l0 < spec_.min_l0 || l0 > spec_.max_l0) return std::nullopt;

  std::uint64_t index = 0;
  for (int prior = spec_.min_l0; prior < l0; ++prior) {
    index = sat_add(index, count_from(prior, 0, 0));
  }
  int res_lo = l0;
  int prev_win_lo = 0;
  int used = 0;
  for (std::size_t j = 1; j < layout.size(); ++j) {
    const int r = layout[j].result_len();
    const int p = layout[j].prediction_len();
    const int r_hi = std::min(spec_.max_r, spec_.n - res_lo);
    const int p_cap =
        std::min({spec_.max_p, spec_.max_l - r, res_lo - prev_win_lo});
    if (r < spec_.min_r || r > r_hi || p < spec_.min_p || p > p_cap) {
      return std::nullopt;  // layout outside this spec's bounds
    }
    // All (r', p') pairs ranked before (r, p) at this state.
    for (int rp = spec_.min_r; rp < r; ++rp) {
      const int php =
          std::min({spec_.max_p, spec_.max_l - rp, res_lo - prev_win_lo});
      for (int pp = spec_.min_p; pp <= php; ++pp) {
        index = sat_add(index, count_from(res_lo + rp, res_lo - pp, used + 1));
      }
    }
    for (int pp = spec_.min_p; pp < p; ++pp) {
      index = sat_add(index, count_from(res_lo + r, res_lo - pp, used + 1));
    }
    prev_win_lo = res_lo - p;
    res_lo += r;
    ++used;
  }
  return index;
}

// ---------------------------------------------------------------------------
// Budgeted exploration: parallel cheap phase + sequential streaming fold
// ---------------------------------------------------------------------------

namespace {

/// Phase-A output for one sampled layout: its exact error figure plus
/// the Tier-B synthesis figures — exact when `exact_synth` (eligible
/// no-detection closed form), otherwise a componentwise lower bound.
struct CheapEval {
  double error = 0.0;
  double delay = 0.0;
  int area = 0;
  bool exact_synth = false;
};

CheapEval cheap_eval(const core::GeArConfig& cfg, bool with_detection,
                     const synth::DelayModel& model) {
  CheapEval out;
  out.error = core::paper_error_probability(cfg);
  if (tier_b_eligible(cfg, with_detection)) {
    const CachedSynth exact = tier_b_closed_form(cfg, model);
    out.delay = exact.sum_delay_ns;  // == delay_ns: "sum" is the only port
    out.area = exact.area_luts;
    out.exact_synth = true;
  } else {
    const SynthBound bound = tier_b_lower_bound(cfg, with_detection, model);
    out.delay = bound.delay_ns;
    out.area = bound.area_luts;
  }
  return out;
}

}  // namespace

HeteroExploreResult explore_hetero(const HeteroSpace& space,
                                   const HeteroExploreOptions& opts,
                                   const SweepContext& ctx) {
  const synth::DelayModel model =
      ctx.cache != nullptr ? ctx.cache->model() : synth::DelayModel::virtex6();

  HeteroExploreResult result;
  result.space_size = space.size();
  const std::uint64_t count =
      opts.budget == 0 ? space.size() : std::min(opts.budget, space.size());
  if (count == 0) return result;
  // Stride sampling: a pure function of (size, budget); index 0 is
  // always sampled so the smallest layouts stay in every sweep.
  const std::uint64_t stride = space.size() / count;

  // Phase A — cheap evaluations, sharded by index range (§5a): each
  // entry is a pure function of its index, so any interleaving fills
  // the same vector.
  std::vector<CheapEval> evals(static_cast<std::size_t>(count));
  const auto shards = stats::ParallelExecutor::make_shards(
      count, std::max<std::uint64_t>(1, opts.shard_size));
  const auto run_shard = [&](std::size_t s) {
    for (std::uint64_t i = shards[s].begin; i < shards[s].end; ++i) {
      evals[static_cast<std::size_t>(i)] =
          cheap_eval(space.decode(i * stride), opts.with_detection, model);
    }
  };
  if (ctx.executor != nullptr && shards.size() > 1) {
    ctx.executor->for_each(shards.size(), run_shard);
  } else {
    for (std::size_t s = 0; s < shards.size(); ++s) run_shard(s);
  }

  // Phase B — sequential fold in ascending index order: filter, prune
  // against the streaming front's current members, fully evaluate the
  // survivors (through the cache when provided — bit-identical either
  // way), insert. Sequentiality is what makes the prune decisions (and
  // therefore every counter) independent of the executor.
  StreamingParetoFront front;
  std::vector<HeteroCandidate> inserted;  // arrival-ordered mirror
  for (std::uint64_t i = 0; i < count; ++i) {
    const CheapEval& e = evals[static_cast<std::size_t>(i)];
    ++result.evaluated;
    if (e.error > opts.max_error_probability) {
      ++result.filtered;
      continue;
    }
    if (opts.prune && !e.exact_synth &&
        front.strictly_dominated(e.delay, static_cast<double>(e.area),
                                 e.error)) {
      ++result.pruned;
      continue;
    }
    const std::uint64_t index = i * stride;
    double delay = e.delay;
    int area = e.area;
    if (!e.exact_synth) {
      const core::GeArConfig cfg = space.decode(index);
      CachedSynth rep;
      if (ctx.cache != nullptr) {
        rep = ctx.cache->gear_synth(cfg, opts.with_detection);
      } else {
        const auto full = synth::synthesize(
            netlist::build_gear(cfg, {.with_detection = opts.with_detection}),
            model);
        rep.area_luts = full.area_luts;
        rep.carry_elements = full.carry_elements;
        rep.lut_count = full.lut_count;
        rep.lut_levels = full.lut_levels;
        rep.delay_ns = full.delay_ns;
        rep.sum_delay_ns = synth::sum_path_delay(full);
      }
      ++result.synthesized;
      delay = opts.with_detection ? rep.delay_ns : rep.sum_delay_ns;
      area = rep.area_luts;
    }
    if (front.insert({std::to_string(index), delay,
                      static_cast<double>(area), e.error})) {
      inserted.push_back({index, delay, area, e.error});
    }
  }

  // Mirror the front's survivors back to indexed candidates: the front
  // keeps arrival order, so one linear merge over the arrival-ordered
  // mirror recovers each member's index without re-parsing labels.
  const auto& members = front.points();
  std::size_t cursor = 0;
  result.front.reserve(members.size());
  for (const auto& m : members) {
    while (cursor < inserted.size() &&
           std::to_string(inserted[cursor].index) != m.label) {
      ++cursor;
    }
    result.front.push_back(inserted[cursor]);
    ++cursor;
  }
  // Exploration tallies are pure functions of (space, options) — the
  // §5a deterministic channel, never the wall-clock one.
  GEAR_OBS_COUNT("design_space/explored", result.evaluated);
  GEAR_OBS_COUNT("design_space/pruned", result.pruned);
  GEAR_OBS_COUNT("design_space/synthesized", result.synthesized);
  return result;
}

HeteroExploreResult explore_hetero(const HeteroSpace& space,
                                   const HeteroExploreOptions& opts) {
  return explore_hetero(space, opts, SweepContext{});
}

}  // namespace gear::analysis
