#include "analysis/design_space.h"

#include <iterator>
#include <optional>

#include "core/error_model.h"

namespace gear::analysis {

namespace {

AccuracyPoint accuracy_point(const core::GeArConfig& cfg) {
  AccuracyPoint pt{cfg, 0.0, 0.0, false, false};
  pt.error_probability = core::paper_error_probability(cfg);
  pt.accuracy_percent = (1.0 - pt.error_probability) * 100.0;
  pt.gda_reachable = core::family_supports(core::AdderFamily::kGda, cfg);
  pt.etaii_reachable = core::family_supports(core::AdderFamily::kEtaII, cfg);
  return pt;
}

constexpr core::AdderFamily kCoverageFamilies[] = {
    core::AdderFamily::kAcaI,      core::AdderFamily::kEtaII,
    core::AdderFamily::kAcaII,     core::AdderFamily::kGda,
    core::AdderFamily::kGearStrict, core::AdderFamily::kGearRelaxed};

}  // namespace

std::vector<AccuracyPoint> accuracy_sweep(int n, int r,
                                          const SweepContext& ctx) {
  const auto cfgs = core::GeArConfig::enumerate_relaxed_r(n, r);
  std::vector<AccuracyPoint> out;
  out.reserve(cfgs.size());
  if (ctx.executor != nullptr && cfgs.size() > 1) {
    // optional<> only because AccuracyPoint is not default-constructible.
    auto pts = ctx.executor->map<std::optional<AccuracyPoint>>(
        cfgs.size(), [&](std::size_t i) { return accuracy_point(cfgs[i]); });
    for (auto& pt : pts) out.push_back(std::move(*pt));
    return out;
  }
  for (const auto& cfg : cfgs) out.push_back(accuracy_point(cfg));
  return out;
}

std::vector<AccuracyPoint> accuracy_sweep(int n, int r) {
  return accuracy_sweep(n, r, SweepContext{});
}

std::vector<FamilyCoverage> coverage_comparison(int n, int r,
                                                const SweepContext& ctx) {
  constexpr std::size_t kFamilies = std::size(kCoverageFamilies);
  if (ctx.executor != nullptr) {
    return ctx.executor->map<FamilyCoverage>(kFamilies, [&](std::size_t i) {
      return FamilyCoverage{kCoverageFamilies[i],
                            core::reachable_p_values(kCoverageFamilies[i], n, r)};
    });
  }
  std::vector<FamilyCoverage> out;
  out.reserve(kFamilies);
  for (core::AdderFamily family : kCoverageFamilies) {
    out.push_back({family, core::reachable_p_values(family, n, r)});
  }
  return out;
}

std::vector<FamilyCoverage> coverage_comparison(int n, int r) {
  return coverage_comparison(n, r, SweepContext{});
}

}  // namespace gear::analysis
