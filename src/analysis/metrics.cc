#include "analysis/metrics.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "core/width.h"

namespace gear::analysis {

std::vector<double> default_maa_thresholds() {
  return {100.0, 97.5, 95.0, 92.5, 90.0};
}

ErrorMetrics evaluate(const adders::ApproxAdder& adder, stats::OperandSource& source,
                      std::uint64_t samples,
                      const std::vector<double>& maa_thresholds) {
  assert(source.width() == adder.width());

  ErrorMetrics m;
  m.samples = samples;
  m.maa_acceptance.assign(maa_thresholds.size(), 0.0);
  // Empty-stream convention (see header): all-zero metrics, no 0/0.
  if (samples == 0) return m;

  const int n = adder.width();
  double med_acc = 0.0, amp_acc = 0.0, inf_acc = 0.0;
  std::uint64_t errors = 0;

  for (std::uint64_t t = 0; t < samples; ++t) {
    const auto [a, b] = source.next();
    const std::uint64_t approx = adder.add(a, b);
    const std::uint64_t exact = adder.exact(a, b);
    const double ed = std::abs(static_cast<double>(approx) -
                               static_cast<double>(exact));
    if (approx != exact) ++errors;
    med_acc += ed;
    m.max_ed = std::max(m.max_ed, ed);

    double acc_amp;
    if (exact == 0) {
      acc_amp = (approx == 0) ? 1.0 : 0.0;
    } else {
      acc_amp = std::clamp(1.0 - ed / static_cast<double>(exact), 0.0, 1.0);
    }
    amp_acc += acc_amp;
    for (std::size_t i = 0; i < maa_thresholds.size(); ++i) {
      if (acc_amp * 100.0 >= maa_thresholds[i] - 1e-12) {
        m.maa_acceptance[i] += 1.0;
      }
    }

    const int wrong_bits = std::popcount(approx ^ exact);
    inf_acc += 1.0 - static_cast<double>(wrong_bits) / static_cast<double>(n + 1);
  }

  const auto count = static_cast<double>(samples);
  m.error_rate = static_cast<double>(errors) / count;
  m.med = med_acc / count;
  // Error-free convention (see header): 0/0 resolves to 0, not NaN.
  m.ned = m.max_ed > 0.0 ? m.med / m.max_ed : 0.0;
  // width_mask keeps 2^N - 1 shift-safe at N == 64 (wide accumulators);
  // the double rounding is identical to the pow(2.0, n) - 1.0 form.
  m.ned_range = m.med / static_cast<double>(core::width_mask(n));
  m.acc_amp_avg = amp_acc / count;
  m.acc_inf_avg = inf_acc / count;
  for (double& a : m.maa_acceptance) a /= count;
  return m;
}

}  // namespace gear::analysis
