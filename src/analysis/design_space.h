// Design-space exploration (paper Fig. 1 and Fig. 7).
//
// Fig. 1: how many (R, P) points each adder family can reach at fixed N
// and R. Fig. 7: the probabilistic accuracy of every GeAr point in a P
// sweep, with the GDA-reachable subset marked.
#pragma once

#include <string>
#include <vector>

#include "analysis/dse_cache.h"
#include "core/config.h"
#include "core/coverage.h"

namespace gear::analysis {

/// One point of the Fig. 7 accuracy sweep.
struct AccuracyPoint {
  core::GeArConfig cfg;
  double error_probability = 0.0;   ///< paper model (Eqs. 5-7)
  double accuracy_percent = 0.0;    ///< (1 - error_probability) * 100
  bool gda_reachable = false;
  bool etaii_reachable = false;
};

/// Accuracy of every (relaxed) P in [1, n-r] at fixed (n, r). The
/// SweepContext overload evaluates the points on the executor (the cache
/// is unused — this sweep never synthesizes); output is bit-identical to
/// the serial form for any thread count.
std::vector<AccuracyPoint> accuracy_sweep(int n, int r);
std::vector<AccuracyPoint> accuracy_sweep(int n, int r,
                                          const SweepContext& ctx);

/// One family's row of the Fig. 1 comparison at fixed (n, r).
struct FamilyCoverage {
  core::AdderFamily family;
  std::vector<int> p_values;
};

/// Coverage of all families at fixed (n, r). The SweepContext overload
/// scans the families concurrently; output order is fixed.
std::vector<FamilyCoverage> coverage_comparison(int n, int r);
std::vector<FamilyCoverage> coverage_comparison(int n, int r,
                                                const SweepContext& ctx);

}  // namespace gear::analysis
