// Design-space exploration (paper Fig. 1 and Fig. 7), plus the
// heterogeneous per-segment space that dwarfs them.
//
// Fig. 1: how many (R, P) points each adder family can reach at fixed N
// and R. Fig. 7: the probabilistic accuracy of every GeAr point in a P
// sweep, with the GDA-reachable subset marked.
//
// HeteroSpace / explore_hetero: the paper's enumerable (N, R, P) space at
// N=32 is 767 configs, but per-block (R_j, P_j) layouts (Farahmand et
// al.) blow that up to millions. The enumerator never materializes the
// space: it counts layouts with a ranking DP and decodes any index on
// demand (index -> layout is a bijection), so a budgeted sweep can
// stream GeArConfig::make_custom layouts shard by shard under the §5a
// determinism contract. See DESIGN.md §5g.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/dse_cache.h"
#include "analysis/pareto.h"
#include "core/config.h"
#include "core/coverage.h"

namespace gear::analysis {

/// One point of the Fig. 7 accuracy sweep.
struct AccuracyPoint {
  core::GeArConfig cfg;
  double error_probability = 0.0;   ///< paper model (Eqs. 5-7)
  double accuracy_percent = 0.0;    ///< (1 - error_probability) * 100
  bool gda_reachable = false;
  bool etaii_reachable = false;
};

/// Accuracy of every (relaxed) P in [1, n-r] at fixed (n, r). The
/// SweepContext overload evaluates the points on the executor (the cache
/// is unused — this sweep never synthesizes); output is bit-identical to
/// the serial form for any thread count.
std::vector<AccuracyPoint> accuracy_sweep(int n, int r);
std::vector<AccuracyPoint> accuracy_sweep(int n, int r,
                                          const SweepContext& ctx);

/// One family's row of the Fig. 1 comparison at fixed (n, r).
struct FamilyCoverage {
  core::AdderFamily family;
  std::vector<int> p_values;
};

/// Coverage of all families at fixed (n, r). The SweepContext overload
/// scans the families concurrently; output order is fixed.
std::vector<FamilyCoverage> coverage_comparison(int n, int r);
std::vector<FamilyCoverage> coverage_comparison(int n, int r,
                                                const SweepContext& ctx);

/// Bounds of a heterogeneous segment-tiling space: every layout is a
/// sub-adder 0 of length l0 in [min_l0, max_l0] followed by segments
/// (R_j, P_j) tiling [l0, N), each with R_j in [min_r, max_r], P_j in
/// [min_p, max_p], window length R_j + P_j <= max_l, at most max_k
/// sub-adders total (including sub-adder 0), and the window-order
/// invariant P_{j+1} <= P_j + R_{j+1} that make_custom enforces. The
/// degenerate exact adder (no segments) is excluded: l0 < N always.
struct HeteroSpaceSpec {
  int n = 16;
  int min_l0 = 1;
  int max_l0 = 63;  ///< clamped to n - 1
  int min_r = 1;
  int max_r = 63;
  int min_p = 1;
  int max_p = 63;
  int max_l = 63;   ///< max window length R_j + P_j
  int max_k = 63;   ///< max sub-adder count, including sub-adder 0
};

/// The enumerable heterogeneous space under a spec: a counting DP over
/// (res_lo, prev_win_lo, segments used) ranks layouts in a fixed
/// lexicographic order — l0 ascending, then per segment R ascending, P
/// ascending — so index -> layout decoding is a bijection on
/// [0, size()). Counts saturate at UINT64_MAX for astronomically large
/// specs; decode() stays correct for every representable index because a
/// saturated subtree count can never be exceeded by a uint64 index.
class HeteroSpace {
 public:
  explicit HeteroSpace(const HeteroSpaceSpec& spec);

  const HeteroSpaceSpec& spec() const { return spec_; }

  /// Number of layouts in the space (saturating at UINT64_MAX).
  std::uint64_t size() const { return size_; }

  /// Decodes index -> layout (aborts on index >= size(), and routes
  /// through GeArConfig::must_custom, whose message names any violated
  /// constraint — decoded layouts are valid by construction). Uniform
  /// geometries canonicalize: the returned config may be strict/relaxed.
  core::GeArConfig decode(std::uint64_t index) const;

  /// Inverse of decode: the index of a config's layout, or nullopt when
  /// the layout lies outside the spec's bounds. Works on any GeArConfig
  /// (strict, relaxed or custom) since it reads only the layout.
  std::optional<std::uint64_t> encode(const core::GeArConfig& cfg) const;

 private:
  /// Saturating count of layout completions from state (res_lo,
  /// prev_win_lo, segs_used), read from the precomputed table. The table
  /// is filled bottom-up at construction (res_lo descending), so decode
  /// and encode are const, allocation-free per call and safe to run
  /// concurrently from Phase-A shards.
  std::uint64_t count_from(int res_lo, int prev_win_lo, int segs_used) const;

  HeteroSpaceSpec spec_;
  int max_segs_ = 0;  ///< max segment count (max_k - 1, clamped)
  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> counts_;
};

/// Tuning of a budgeted heterogeneous exploration.
struct HeteroExploreOptions {
  /// Layouts to evaluate. 0 or >= size(): the whole space. Otherwise the
  /// space is stride-sampled: index_i = i * floor(size / budget), a pure
  /// function of (size, budget) — never of threads or caching.
  std::uint64_t budget = 0;
  bool with_detection = false;
  /// Candidates with paper error probability above this are dropped
  /// before ranking (same meaning as SelectionRequest's bound).
  double max_error_probability = 1.0;
  /// Branch-and-bound: skip full synthesis of candidates whose Tier-B
  /// lower bound is already strictly dominated by the streaming front.
  /// Sound (the true point is dominated too, see DESIGN.md §5g), so the
  /// front is identical with pruning on or off — only `pruned` and the
  /// synthesis count change.
  bool prune = true;
  /// Phase-A shard size (see §5a): cheap evaluations are sharded by
  /// index range; the shard geometry is a pure function of
  /// (count, shard_size).
  std::uint64_t shard_size = 4096;
};

/// One ranked candidate of the exploration. `index` keys back into the
/// space (label = decimal index); the triple is the Pareto coordinate.
struct HeteroCandidate {
  std::uint64_t index = 0;
  double delay_ns = 0.0;
  int area_luts = 0;
  double error = 0.0;  ///< paper error probability (exact DP for customs)

  bool operator==(const HeteroCandidate&) const = default;
};

struct HeteroExploreResult {
  std::uint64_t space_size = 0;  ///< HeteroSpace::size()
  std::uint64_t evaluated = 0;   ///< layouts decoded + cheap-evaluated
  std::uint64_t filtered = 0;    ///< dropped by max_error_probability
  std::uint64_t pruned = 0;      ///< bound-dominated, full eval skipped
  std::uint64_t synthesized = 0; ///< full synthesize() calls (non-Tier-B)
  /// Streaming Pareto front over (delay, area, error), in candidate
  /// index order (= arrival order of the sequential fold).
  std::vector<HeteroCandidate> front;

  bool operator==(const HeteroExploreResult&) const = default;
};

/// Budgeted exploration of a heterogeneous space: decodes each sampled
/// index, computes its exact error figure and Tier-B bound in parallel
/// shards (Phase A, pure per-index functions), then folds candidates in
/// ascending index order into a StreamingParetoFront with
/// branch-and-bound pruning (Phase B, sequential). Full synthesis runs
/// only for frontier-surviving candidates the closed form cannot serve,
/// through ctx.cache when provided. The result is bit-identical for any
/// executor thread count and for all serial/parallel x cached/uncached
/// combinations (pinned by test_design_space.cc and bench_dse_hetero).
HeteroExploreResult explore_hetero(const HeteroSpace& space,
                                   const HeteroExploreOptions& opts,
                                   const SweepContext& ctx);
HeteroExploreResult explore_hetero(const HeteroSpace& space,
                                   const HeteroExploreOptions& opts);

}  // namespace gear::analysis
