// Memoized synthesis for design-space exploration.
//
// A full rank_configs sweep at N=32 synthesizes hundreds of candidate
// netlists whose results never change between runs — and whose sub-adder
// chains repeat across candidates. DseCache collapses that cost with two
// tiers, both returning values bit-identical to calling synth::synthesize
// directly (pinned by test_dse_cache.cc):
//
//  * Tier A — a canonical-config-keyed memo of full synthesis results
//    (area/LUT/carry counts, critical and sum-port STA delays, optional
//    power). Keys canonicalize through the sub-adder *layout*, so two
//    parameterizations producing the same geometry share one entry. The
//    Tier-A map can be persisted to JSON (doubles serialized losslessly)
//    so repeated bench runs start warm.
//  * Tier B — a sub-adder-level part cache for plain (no-detection) GeAr
//    layouts with strictly increasing window starts. Such netlists are
//    pure carry-macro chains: zero LUTs, one FA element per window bit,
//    and a per-chain arrival recurrence that replays analyze_timing's
//    float operations term for term (see DESIGN.md §5e for the
//    bit-identity argument). Each chain is keyed by its (prediction
//    length, result length, per-bit fan-out penalty profile), so
//    identical sub-adders across different configs are "synthesized"
//    once and shared.
//
// Thread safety: all lookups are mutex-guarded; concurrent misses on the
// same key compute the same deterministic value, so the last insert wins
// harmlessly. The cache is therefore safe to share across a
// stats::ParallelExecutor sweep.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/error_model.h"
#include "netlist/netlist.h"
#include "stats/operand_model.h"
#include "stats/parallel.h"
#include "synth/power.h"
#include "synth/report.h"

namespace gear::analysis {

class DseCache;

/// Optional acceleration context threaded through the sweep drivers
/// (rank_configs, accuracy_sweep, coverage_comparison, ...). Both members
/// may be null: a null executor runs the sweep serially on the calling
/// thread, a null cache synthesizes every candidate directly. Results are
/// bit-identical in all four combinations — candidates are evaluated
/// index-ordered and merged deterministically, and the cache returns the
/// same bits as direct synthesis (see DseCache).
struct SweepContext {
  stats::ParallelExecutor* executor = nullptr;
  DseCache* cache = nullptr;
  /// Operand-distribution model conditioning the error figures the sweep
  /// ranks on (DESIGN.md §5i). Null — or a uniform model, which the
  /// drivers canonicalize to null — keeps the uniform closed forms and is
  /// bit-identical to the pre-model behaviour; a trace-conditioned model
  /// makes rank_configs/select_config filter and tie-break on
  /// workload-aware analytic figures, still with no Monte Carlo in the
  /// loop.
  const stats::OperandModel* model = nullptr;
};

/// The synthesis scalars a sweep consumes; every field is bit-identical
/// to the corresponding SynthReport field for the same netlist + model.
struct CachedSynth {
  int area_luts = 0;
  int carry_elements = 0;
  int lut_count = 0;
  int lut_levels = 0;
  double delay_ns = 0.0;      ///< critical path over all output ports
  double sum_delay_ns = 0.0;  ///< "sum" port arrival (== sum_path_delay)

  bool operator==(const CachedSynth&) const = default;
};

/// The error-model scalars a sweep consumes, memoized together because
/// they share one pass over the layout. For uniform entries paper_error
/// is core::paper_error_probability; for model-conditioned entries (the
/// gear_error overload taking an OperandModel) it holds the conditioned
/// exact error probability — the figure the sweep filters on either way.
struct CachedError {
  double paper_error = 0.0;
  core::ExactErrorMetrics exact;

  bool operator==(const CachedError&) const = default;
};

/// Canonical geometry string "n<N>:<lo>.<hi>.<lo>.<hi>:...": equal
/// layouts share one key no matter how the config was constructed. This
/// is the key the cache shards hash and what test code uses to assert
/// canonical-identity of custom/uniform twins.
std::string layout_canonical_key(const core::GeArConfig& cfg);

/// True iff the Tier-B closed form below reproduces full synthesis bit
/// for bit: no detection logic and strictly increasing window starts
/// (equal starts let the netlist builder's hash-consing share chain
/// prefixes, breaking the one-FA-per-window-bit area identity).
bool tier_b_eligible(const core::GeArConfig& cfg, bool with_detection);

/// Tier-B closed form: synthesis scalars of the plain carry-chain
/// netlist, computed analytically. Bit-identical to synth::synthesize
/// when tier_b_eligible() holds (pinned by test_dse_cache.cc); undefined
/// meaning otherwise.
CachedSynth tier_b_closed_form(const core::GeArConfig& cfg,
                               const synth::DelayModel& model);

/// Componentwise lower bound on the synthesis result of *any* GeAr
/// layout, with or without detection — the branch-and-bound relaxation
/// used by explore_hetero. `area_luts` never exceeds the true LUT+FA
/// area and `delay_ns` never exceeds the true critical path (see
/// DESIGN.md §5g for the soundness argument). For eligible no-detection
/// layouts the bound *is* the exact closed form.
struct SynthBound {
  int area_luts = 0;
  double delay_ns = 0.0;
};
SynthBound tier_b_lower_bound(const core::GeArConfig& cfg, bool with_detection,
                              const synth::DelayModel& model);

class DseCache {
 public:
  DseCache() = default;
  explicit DseCache(synth::DelayModel model) : model_(model) {}

  const synth::DelayModel& model() const { return model_; }

  /// Synthesis scalars for a GeAr configuration, memoized. Bit-identical
  /// to synth::synthesize(netlist::build_gear(cfg, {.with_detection =
  /// with_detection}), model()).
  CachedSynth gear_synth(const core::GeArConfig& cfg, bool with_detection);

  /// Error-model scalars for a GeAr configuration, memoized by layout.
  /// Bit-identical to calling core::paper_error_probability and
  /// core::exact_error_metrics directly (the miss path *is* those calls).
  CachedError gear_error(const core::GeArConfig& cfg);

  /// Model-conditioned error scalars, memoized by layout *and*
  /// distribution: the key is the layout key plus ":d<fingerprint>"
  /// (stats::OperandModel::fingerprint, hex), so uniform entries stay
  /// shared across workloads while distinct trace-conditioned entries
  /// never collide. A null or uniform model delegates to gear_error(cfg)
  /// above (same entries, bit-identical values); otherwise the miss path
  /// is core::exact_error_metrics(cfg, *model) with paper_error set to
  /// the conditioned error probability.
  CachedError gear_error(const core::GeArConfig& cfg,
                         const stats::OperandModel* model);

  /// Generic memo for non-GeAr circuits (GDA, RCA baselines, ...): the
  /// caller provides a canonical key and a netlist builder invoked only
  /// on a miss.
  CachedSynth keyed_synth(const std::string& key,
                          const std::function<netlist::Netlist()>& build);

  /// Memoized switching-activity estimate for a GeAr configuration
  /// (deterministic: the RNG is the substream "dse-power:<key>" of
  /// `seed`, so hit and miss return identical values).
  synth::PowerReport gear_power(const core::GeArConfig& cfg,
                                bool with_detection, std::uint64_t vectors,
                                std::uint64_t seed);

  /// Canonical Tier-A key: layout-derived, so equal geometries share an
  /// entry regardless of how the config was constructed.
  std::string config_key(const core::GeArConfig& cfg,
                         bool with_detection) const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Tier-B fast-path evaluations (subset of misses: Tier-A misses that
  /// were served analytically instead of via full synthesis).
  std::uint64_t fast_path_evals() const;
  std::size_t size() const;

  /// Persists / restores the Tier-A synthesis and error maps as JSON.
  /// Doubles are serialized with %.17g, which round-trips bit-exactly,
  /// so a warm cache returns the same bits as a cold one. load_json
  /// merges into the current maps (existing keys are overwritten) and
  /// returns false on I/O failure, leaving parsed-so-far entries in
  /// place.
  bool save_json(const std::string& path) const;
  bool load_json(const std::string& path);

  /// Sharded persistence for caches too large for one JSON blob: writes
  /// `shard_count` files "shard-<i>-of-<count>.json" under `dir`
  /// (created if absent), each in the save_json line format, with every
  /// entry routed to FNV-1a(key) % shard_count. Deterministic: the same
  /// cache contents produce byte-identical shard files. Returns false if
  /// any shard fails to write.
  bool save_shards(const std::string& dir, int shard_count = 16) const;

  /// Merges every "shard-*.json" under `dir` into the current maps, in
  /// lexicographic filename order. A missing, truncated or corrupt shard
  /// is skipped line by line — the tolerant parser keeps every entry it
  /// can read — so partial saves degrade to a smaller warm set, never to
  /// failure (pinned by DseCache.ShardedLoadSurvivesCorruptShard).
  /// Returns false only when `dir` cannot be read or holds no shards.
  bool load_shards(const std::string& dir);

 private:
  CachedSynth synthesize_uncached(const core::GeArConfig& cfg,
                                  bool with_detection);
  CachedSynth fast_path(const core::GeArConfig& cfg);
  /// Parses one save_json/save_shards line into the maps (caller holds
  /// mu_); unparseable lines are ignored.
  void parse_line_locked(const std::string& line);
  /// Hex-float rendering of the delay-model constants, shared by every
  /// Tier-A key; built once at construction.
  std::string make_model_key() const;

  synth::DelayModel model_ = synth::DelayModel::virtex6();
  std::string model_key_ = make_model_key();
  mutable std::mutex mu_;
  std::map<std::string, CachedSynth> synth_cache_;
  std::map<std::string, CachedError> error_cache_;
  /// Tier B: chain arrival keyed by (pred_len, result_len, per-bit
  /// fan-count profile) — the penalty per bit is a pure function of the
  /// integer fan count, so integer keys are exact and cheap.
  std::map<std::vector<int>, double> part_cache_;
  std::map<std::string, synth::PowerReport> power_cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t fast_path_evals_ = 0;
};

}  // namespace gear::analysis
