#include "analysis/propagation.h"

#include <cmath>

namespace gear::analysis {

double composed_error_bound(double per_add_probability, std::uint64_t adds) {
  if (per_add_probability <= 0.0) return 0.0;
  if (per_add_probability >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - per_add_probability, static_cast<double>(adds));
}

std::uint64_t chain_adds(std::uint64_t terms) {
  return terms > 0 ? terms - 1 : 0;
}

std::uint64_t tree_adds(std::uint64_t leaves) {
  return leaves > 0 ? leaves - 1 : 0;
}

double composed_med(double per_add_med, std::uint64_t adds) {
  return per_add_med * static_cast<double>(adds);
}

}  // namespace gear::analysis
