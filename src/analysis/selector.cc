#include "analysis/selector.h"

#include <algorithm>
#include <set>

#include "core/error_model.h"
#include "netlist/circuits.h"
#include "synth/report.h"

namespace gear::analysis {

namespace {

double score_of(Objective objective, double delay, int area) {
  switch (objective) {
    case Objective::kDelay: return delay;
    case Objective::kArea: return static_cast<double>(area);
    case Objective::kDelayArea: return delay * static_cast<double>(area);
  }
  return delay;
}

}  // namespace

std::vector<SelectedConfig> rank_configs(const SelectionRequest& request) {
  // Candidate set: strict enumeration plus (optionally) the relaxed
  // sweeps; de-duplicate by (R, P).
  std::vector<core::GeArConfig> candidates;
  std::set<std::pair<int, int>> seen;
  auto consider = [&](const core::GeArConfig& cfg) {
    if (seen.emplace(cfg.r(), cfg.p()).second) candidates.push_back(cfg);
  };
  for (const auto& cfg : core::GeArConfig::enumerate(request.n)) consider(cfg);
  if (request.include_relaxed) {
    for (int r = 1; r < request.n; ++r) {
      for (const auto& cfg : core::GeArConfig::enumerate_relaxed_r(request.n, r)) {
        if (!cfg.is_exact()) consider(cfg);
      }
    }
  }

  std::vector<SelectedConfig> out;
  for (const auto& cfg : candidates) {
    const double perr = core::paper_error_probability(cfg);
    if (perr > request.max_error_probability) continue;
    const auto rep = synth::synthesize(netlist::build_gear(
        cfg, {.with_detection = request.with_detection}));
    SelectedConfig sel(cfg);
    sel.error_probability = perr;
    sel.delay_ns = request.with_detection ? rep.delay_ns
                                          : synth::sum_path_delay(rep);
    sel.area_luts = rep.area_luts;
    sel.score = score_of(request.objective, sel.delay_ns, sel.area_luts);
    out.push_back(std::move(sel));
  }
  std::sort(out.begin(), out.end(),
            [](const SelectedConfig& a, const SelectedConfig& b) {
              if (a.score != b.score) return a.score < b.score;
              if (a.area_luts != b.area_luts) return a.area_luts < b.area_luts;
              return a.cfg.r() > b.cfg.r();
            });
  return out;
}

std::optional<SelectedConfig> select_config(const SelectionRequest& request) {
  auto ranked = rank_configs(request);
  if (ranked.empty()) return std::nullopt;
  return ranked.front();
}

}  // namespace gear::analysis
