#include "analysis/selector.h"

#include <algorithm>
#include <set>

#include "core/error_model.h"
#include "netlist/circuits.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/report.h"

namespace gear::analysis {

namespace {

double score_of(Objective objective, double delay, int area) {
  switch (objective) {
    case Objective::kDelay: return delay;
    case Objective::kArea: return static_cast<double>(area);
    case Objective::kDelayArea: return delay * static_cast<double>(area);
  }
  return delay;
}

/// Candidate set: strict enumeration plus (optionally) the relaxed
/// sweeps; de-duplicated by (R, P), which also makes the ranking
/// comparator below a strict total order.
std::vector<core::GeArConfig> candidate_set(const SelectionRequest& request) {
  std::vector<core::GeArConfig> candidates;
  std::set<std::pair<int, int>> seen;
  auto consider = [&](const core::GeArConfig& cfg) {
    if (seen.emplace(cfg.r(), cfg.p()).second) candidates.push_back(cfg);
  };
  for (const auto& cfg : core::GeArConfig::enumerate(request.n)) consider(cfg);
  if (request.include_relaxed) {
    for (int r = 1; r < request.n; ++r) {
      for (const auto& cfg : core::GeArConfig::enumerate_relaxed_r(request.n, r)) {
        if (!cfg.is_exact()) consider(cfg);
      }
    }
  }
  return candidates;
}

/// Evaluates one candidate: error-model filter, synthesis (through the
/// cache when provided — bit-identical either way), exact PMF metrics.
/// A non-null `model` is non-uniform (rank_configs canonicalizes uniform
/// models away): the filter then applies to the conditioned exact error
/// probability and the exact_* figures are workload-aware, with the
/// uniform references kept alongside.
std::optional<SelectedConfig> evaluate(const SelectionRequest& request,
                                       const core::GeArConfig& cfg,
                                       DseCache* cache,
                                       const stats::OperandModel* model) {
  if (cache != nullptr) {
    const CachedError err =
        model != nullptr ? cache->gear_error(cfg, model) : cache->gear_error(cfg);
    if (err.paper_error > request.max_error_probability) return std::nullopt;
    SelectedConfig sel(cfg);
    sel.error_probability = err.paper_error;
    const CachedSynth rep = cache->gear_synth(cfg, request.with_detection);
    sel.delay_ns = request.with_detection ? rep.delay_ns : rep.sum_delay_ns;
    sel.area_luts = rep.area_luts;
    sel.score = score_of(request.objective, sel.delay_ns, sel.area_luts);
    sel.exact_med = err.exact.med;
    sel.exact_ned = err.exact.ned;
    sel.exact_ned_range = err.exact.ned_range;
    if (model != nullptr) {
      const CachedError uni = cache->gear_error(cfg);
      sel.uniform_error_probability = uni.paper_error;
      sel.uniform_med = uni.exact.med;
      sel.workload_aware = true;
    } else {
      sel.uniform_error_probability = sel.error_probability;
      sel.uniform_med = sel.exact_med;
    }
    return sel;
  }
  const double perr = model != nullptr
                          ? core::exact_error_metrics(cfg, *model).error_probability
                          : core::paper_error_probability(cfg);
  if (perr > request.max_error_probability) return std::nullopt;
  SelectedConfig sel(cfg);
  sel.error_probability = perr;
  const auto rep = synth::synthesize(netlist::build_gear(
      cfg, {.with_detection = request.with_detection}));
  sel.delay_ns = request.with_detection ? rep.delay_ns
                                        : synth::sum_path_delay(rep);
  sel.area_luts = rep.area_luts;
  sel.score = score_of(request.objective, sel.delay_ns, sel.area_luts);
  const auto exact = model != nullptr ? core::exact_error_metrics(cfg, *model)
                                      : core::exact_error_metrics(cfg);
  sel.exact_med = exact.med;
  sel.exact_ned = exact.ned;
  sel.exact_ned_range = exact.ned_range;
  if (model != nullptr) {
    sel.uniform_error_probability = core::paper_error_probability(cfg);
    sel.uniform_med = core::exact_error_metrics(cfg).med;
    sel.workload_aware = true;
  } else {
    sel.uniform_error_probability = sel.error_probability;
    sel.uniform_med = sel.exact_med;
  }
  return sel;
}

/// First comparator tier on which `a` beats `b` — the figure that decides
/// their relative rank. Tiers mirror the sort in rank_configs exactly;
/// the MED tiers exist only on workload-aware sweeps.
TieBreak deciding_tier(const SelectedConfig& a, const SelectedConfig& b,
                       bool workload_aware) {
  if (a.score != b.score) return TieBreak::kScore;
  if (a.area_luts != b.area_luts) return TieBreak::kArea;
  if (workload_aware) {
    if (a.exact_med != b.exact_med) return TieBreak::kWorkloadMed;
    if (a.uniform_med != b.uniform_med) return TieBreak::kUniformMed;
  }
  if (a.cfg.r() != b.cfg.r()) return TieBreak::kWiderR;
  return TieBreak::kNarrowerP;
}

}  // namespace

const char* tie_break_name(TieBreak t) {
  switch (t) {
    case TieBreak::kNone: return "none";
    case TieBreak::kScore: return "score";
    case TieBreak::kArea: return "area";
    case TieBreak::kWorkloadMed: return "workload-med";
    case TieBreak::kUniformMed: return "uniform-med";
    case TieBreak::kWiderR: return "wider-r";
    case TieBreak::kNarrowerP: return "narrower-p";
  }
  return "none";
}

std::vector<SelectedConfig> rank_configs(const SelectionRequest& request,
                                         const SweepContext& ctx) {
  GEAR_OBS_SPAN("selector/rank_configs", "dse");
  const auto candidates = candidate_set(request);

  // A uniform model is the closed form the plain sweep already uses —
  // canonicalize it to null so the uniform path stays bit-identical to
  // the pre-model selector (including the paper_error filter figure).
  const stats::OperandModel* model =
      ctx.model != nullptr && !ctx.model->is_uniform() ? ctx.model : nullptr;

  // Evaluate per candidate (index-ordered) so the merged list is the same
  // whether the map runs inline or on the executor.
  std::vector<std::optional<SelectedConfig>> evals;
  if (ctx.executor != nullptr && candidates.size() > 1) {
    evals = ctx.executor->map<std::optional<SelectedConfig>>(
        candidates.size(), [&](std::size_t i) {
          return evaluate(request, candidates[i], ctx.cache, model);
        });
  } else {
    evals.reserve(candidates.size());
    for (const auto& cfg : candidates) {
      evals.push_back(evaluate(request, cfg, ctx.cache, model));
    }
  }

  std::vector<SelectedConfig> out;
  for (auto& e : evals) {
    if (e.has_value()) out.push_back(std::move(*e));
  }
  // Candidate/filter tallies depend only on the request, never on the
  // executor interleaving — deterministic channel (test-pinned {1,2,8}).
  GEAR_OBS_COUNT("selector/rank_calls", 1);
  GEAR_OBS_COUNT("selector/candidates", candidates.size());
  GEAR_OBS_COUNT("selector/accepted", out.size());
  GEAR_OBS_COUNT("selector/rejected", candidates.size() - out.size());
  // Strict total order: candidates are unique by (R, P), so the final
  // (r desc, p asc) tiers leave no equivalent pairs and the sort result
  // is independent of the evaluation interleaving. Workload-aware sweeps
  // insert the conditioned and uniform MED tiers between area and the
  // geometric tiers — equal workload MEDs (a conditioned PMF can
  // degenerate, e.g. an all-zeros trace never errs) still rank on the
  // uniform figure before falling back to geometry.
  const bool aware = model != nullptr;
  std::sort(out.begin(), out.end(),
            [aware](const SelectedConfig& a, const SelectedConfig& b) {
              if (a.score != b.score) return a.score < b.score;
              if (a.area_luts != b.area_luts) return a.area_luts < b.area_luts;
              if (aware) {
                if (a.exact_med != b.exact_med) return a.exact_med < b.exact_med;
                if (a.uniform_med != b.uniform_med) {
                  return a.uniform_med < b.uniform_med;
                }
              }
              if (a.cfg.r() != b.cfg.r()) return a.cfg.r() > b.cfg.r();
              return a.cfg.p() < b.cfg.p();
            });
  // Name the figure that separated each entry from its successor; the
  // last entry has nothing below it.
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    out[i].decided_by = deciding_tier(out[i], out[i + 1], aware);
  }
  if (!out.empty()) out.back().decided_by = TieBreak::kNone;
  return out;
}

std::vector<SelectedConfig> rank_configs(const SelectionRequest& request) {
  return rank_configs(request, SweepContext{});
}

std::optional<SelectedConfig> select_config(const SelectionRequest& request,
                                            const SweepContext& ctx) {
  auto ranked = rank_configs(request, ctx);
  if (ranked.empty()) return std::nullopt;
  return ranked.front();
}

std::optional<SelectedConfig> select_config(const SelectionRequest& request) {
  return select_config(request, SweepContext{});
}

}  // namespace gear::analysis
