#include "analysis/dse_cache.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "netlist/circuits.h"
#include "obs/metrics.h"
#include "stats/rng.h"

// Which sweep thread wins the race to populate an entry depends on the
// schedule, so every cache tally below goes to the wall-clock (runtime)
// channel, never the deterministic one.

namespace gear::analysis {

namespace {

/// Exact textual form of a double (hex float round-trips bit-for-bit and
/// is compact enough for map keys).
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

/// Per-bit fan-out counts of the plain (no-detection) GeAr netlist:
/// prediction bits feed one FaCarry, result bits feed FaSum + FaCarry.
std::vector<int> no_detection_fan(const core::GeArConfig& cfg) {
  std::vector<int> fan(static_cast<std::size_t>(cfg.n()), 0);
  for (const auto& s : cfg.layout()) {
    for (int q = s.win_lo; q <= s.win_hi; ++q) {
      fan[static_cast<std::size_t>(q)] += q < s.res_lo ? 1 : 2;
    }
  }
  return fan;
}

/// Carry-chain arrival recurrence over one window, replaying
/// analyze_timing's float operations term for term: operand arrivals are
/// 0, the only inputs are the per-bit fan-out penalties (pen(q) is a
/// pure function of the integer fan count at q). With `fan` from
/// no_detection_fan this is bit-identical to full synthesis of the
/// eligible netlist; with all-zero penalties it is a monotone lower
/// bound on any arrival of the same chain under larger penalties.
double chain_arrival(const core::SubAdderLayout& s, const std::vector<int>& fan,
                     const synth::DelayModel& model) {
  double chain = 0.0;
  double cin = 0.0;  // const0 enters the chain at fabric arrival 0
  for (int q = s.win_lo; q <= s.win_hi; ++q) {
    const double pen =
        std::min(model.t_fanout *
                     std::max(0, fan[static_cast<std::size_t>(q)] - 1),
                 model.t_fanout_cap);
    const double ab = 0.0 + pen;  // fabric_arrival(input) + penalty
    chain = std::max(ab + model.t_entry, cin + model.t_carry);
    cin = chain;
  }
  return chain;
}

}  // namespace

std::string layout_canonical_key(const core::GeArConfig& cfg) {
  // snprintf into a stack buffer — this runs once per lookup, so it must
  // stay cheap (a warm sweep is nothing but key builds and map finds).
  std::string out;
  out.reserve(8 + cfg.layout().size() * 16);
  char buf[72];
  out.append(buf, static_cast<std::size_t>(
                      std::snprintf(buf, sizeof buf, "n%d", cfg.n())));
  for (const auto& s : cfg.layout()) {
    out.append(buf, static_cast<std::size_t>(
                        std::snprintf(buf, sizeof buf, ":%d.%d.%d.%d",
                                      s.win_lo, s.win_hi, s.res_lo, s.res_hi)));
  }
  return out;
}

bool tier_b_eligible(const core::GeArConfig& cfg, bool with_detection) {
  if (with_detection) return false;
  for (int j = 1; j < cfg.k(); ++j) {
    if (cfg.sub(j).win_lo <= cfg.sub(j - 1).win_lo) return false;
  }
  return true;
}

CachedSynth tier_b_closed_form(const core::GeArConfig& cfg,
                               const synth::DelayModel& model) {
  // An eligible netlist is a disjoint union of carry-macro chains: one
  // FaCarry per window bit (result bits add an FaSum sharing the same
  // (a, b, cin) triple, so the FA-element count is exactly the window
  // length), zero LUTs, and the "sum" port reads the top of each chain
  // through one t_exit. Arrival is monotone along a chain, so the port
  // max is the max of the chain tops; adding the shared t_exit
  // afterwards is bit-identical to maxing the per-net exit-adjusted
  // arrivals (fl(+) is monotone).
  const std::vector<int> fan = no_detection_fan(cfg);
  CachedSynth out;
  double worst_chain = 0.0;
  for (const auto& s : cfg.layout()) {
    out.carry_elements += s.window_len();
    worst_chain = std::max(worst_chain, chain_arrival(s, fan, model));
  }
  out.area_luts = out.carry_elements;  // zero LUTs: area is the FA count
  out.lut_count = 0;
  out.lut_levels = 0;
  out.sum_delay_ns = worst_chain + model.t_exit;
  out.delay_ns = out.sum_delay_ns;  // "sum" is the only output port
  return out;
}

SynthBound tier_b_lower_bound(const core::GeArConfig& cfg, bool with_detection,
                              const synth::DelayModel& model) {
  // Soundness (DESIGN.md §5g). Detection only ever *adds* LUTs on top of
  // the carry chains and raises fan-out on nets the chains already read,
  // and both the penalty function and the arrival recurrence are
  // monotone in float arithmetic — so the no-detection plain-chain
  // figures never exceed the with-detection ones. For eligible layouts
  // the closed form is therefore simultaneously exact (det=false) and a
  // valid lower bound (det=true).
  if (tier_b_eligible(cfg, /*with_detection=*/false)) {
    const CachedSynth exact = tier_b_closed_form(cfg, model);
    return {exact.area_luts, exact.delay_ns};
  }
  // Ineligible (equal window starts): chains sharing a start hash-cons a
  // common prefix, so per-group the distinct FA positions are exactly
  // the union [win_lo, max win_hi] — the group's span. Chains with
  // different win_lo never share gates (their carry lineages differ from
  // the first element), so summing group spans counts every FA once and
  // none twice. Delay: the penalty-free recurrence on each window is a
  // monotone lower bound on its true arrival (penalties >= 0), and the
  // true critical path maxes over at least these chain tops + t_exit.
  SynthBound bound;
  const std::vector<int> zero_fan(static_cast<std::size_t>(cfg.n()), 0);
  double worst_chain = 0.0;
  int group_lo = -1, group_hi = -1;
  for (const auto& s : cfg.layout()) {
    if (s.win_lo != group_lo) {
      if (group_lo >= 0) bound.area_luts += group_hi - group_lo + 1;
      group_lo = s.win_lo;
      group_hi = s.win_hi;
    } else {
      group_hi = std::max(group_hi, s.win_hi);
    }
    worst_chain = std::max(worst_chain, chain_arrival(s, zero_fan, model));
  }
  if (group_lo >= 0) bound.area_luts += group_hi - group_lo + 1;
  bound.delay_ns = worst_chain + model.t_exit;
  (void)with_detection;  // the bound above is valid for both
  return bound;
}

std::string DseCache::make_model_key() const {
  std::string out = ":m";
  for (double v : {model_.t_lut, model_.t_net, model_.t_carry, model_.t_entry,
                   model_.t_exit, model_.t_fanout, model_.t_fanout_cap}) {
    out += ",";
    out += hex_double(v);
  }
  return out;
}

std::string DseCache::config_key(const core::GeArConfig& cfg,
                                 bool with_detection) const {
  std::string out = "gear:";
  out += layout_canonical_key(cfg);
  out += with_detection ? ":det1" : ":det0";
  out += model_key_;
  return out;
}

CachedSynth DseCache::synthesize_uncached(const core::GeArConfig& cfg,
                                          bool with_detection) {
  const auto rep = synth::synthesize(
      netlist::build_gear(cfg, {.with_detection = with_detection}), model_);
  CachedSynth out;
  out.area_luts = rep.area_luts;
  out.carry_elements = rep.carry_elements;
  out.lut_count = rep.lut_count;
  out.lut_levels = rep.lut_levels;
  out.delay_ns = rep.delay_ns;
  out.sum_delay_ns = synth::sum_path_delay(rep);
  return out;
}

CachedSynth DseCache::fast_path(const core::GeArConfig& cfg) {
  // The memoized form of tier_b_closed_form: identical float operations
  // (chain_arrival is shared), with each window's arrival additionally
  // stored in the Tier-B part cache so identical sub-adders across
  // different configs are "synthesized" once. Every returned double is
  // bit-identical to full synthesis (pinned by test_dse_cache.cc).
  const std::vector<int> fan = no_detection_fan(cfg);

  CachedSynth out;
  double worst_chain = 0.0;
  std::vector<int> part_key;
  for (const auto& s : cfg.layout()) {
    out.carry_elements += s.window_len();

    // Tier-B part key: the chain delay is a pure function of the
    // prediction/result split and the per-bit *integer* fan counts (the
    // penalty is a deterministic function of the count), so identical
    // sub-adders across different configs share one entry with no
    // floating-point text in the key.
    part_key.clear();
    part_key.push_back(s.prediction_len());
    part_key.push_back(s.result_len());
    for (int q = s.win_lo; q <= s.win_hi; ++q) {
      part_key.push_back(fan[static_cast<std::size_t>(q)]);
    }

    double chain = 0.0;
    bool cached = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = part_cache_.find(part_key);
      if (it != part_cache_.end()) {
        chain = it->second;
        cached = true;
      }
    }
    if (!cached) {
      chain = chain_arrival(s, fan, model_);
      std::lock_guard<std::mutex> lock(mu_);
      part_cache_.emplace(part_key, chain);
    }
    worst_chain = std::max(worst_chain, chain);
  }

  out.area_luts = out.carry_elements;  // zero LUTs: area is the FA count
  out.lut_count = 0;
  out.lut_levels = 0;
  // Arrival is monotone along a chain, so the port max is the max of the
  // chain tops; adding the shared t_exit afterwards is bit-identical to
  // maxing the per-net exit-adjusted arrivals (fl(+) is monotone).
  out.sum_delay_ns = worst_chain + model_.t_exit;
  out.delay_ns = out.sum_delay_ns;  // "sum" is the only output port
  return out;
}

CachedSynth DseCache::gear_synth(const core::GeArConfig& cfg,
                                 bool with_detection) {
  const std::string key = config_key(cfg, with_detection);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = synth_cache_.find(key);
    if (it != synth_cache_.end()) {
      ++hits_;
      GEAR_OBS_RUNTIME_COUNT("dse/synth_hit", 1);
      return it->second;
    }
    ++misses_;
  }
  GEAR_OBS_RUNTIME_COUNT("dse/synth_miss", 1);
  CachedSynth value;
  if (tier_b_eligible(cfg, with_detection)) {
    value = fast_path(cfg);
    GEAR_OBS_RUNTIME_COUNT("dse/synth_fast_path", 1);
    std::lock_guard<std::mutex> lock(mu_);
    ++fast_path_evals_;
    synth_cache_.emplace(key, value);
  } else {
    value = synthesize_uncached(cfg, with_detection);
    std::lock_guard<std::mutex> lock(mu_);
    synth_cache_.emplace(key, value);
  }
  GEAR_OBS_RUNTIME_COUNT("dse/synth_insert", 1);
  return value;
}

CachedError DseCache::gear_error(const core::GeArConfig& cfg) {
  const std::string key = layout_canonical_key(cfg);
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = error_cache_.find(key);
    if (it != error_cache_.end()) {
      ++hits_;
      GEAR_OBS_RUNTIME_COUNT("dse/error_hit", 1);
      return it->second;
    }
    ++misses_;
  }
  GEAR_OBS_RUNTIME_COUNT("dse/error_miss", 1);
  CachedError value;
  value.paper_error = core::paper_error_probability(cfg);
  value.exact = core::exact_error_metrics(cfg);
  GEAR_OBS_RUNTIME_COUNT("dse/error_insert", 1);
  std::lock_guard<std::mutex> lock(mu_);
  error_cache_.emplace(key, value);
  return value;
}

CachedError DseCache::gear_error(const core::GeArConfig& cfg,
                                 const stats::OperandModel* model) {
  if (model == nullptr || model->is_uniform()) return gear_error(cfg);
  std::string key = layout_canonical_key(cfg);
  char fp[24];
  std::snprintf(fp, sizeof fp, ":d%016llx",
                static_cast<unsigned long long>(model->fingerprint()));
  key += fp;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = error_cache_.find(key);
    if (it != error_cache_.end()) {
      ++hits_;
      GEAR_OBS_RUNTIME_COUNT("dse/error_hit", 1);
      return it->second;
    }
    ++misses_;
  }
  GEAR_OBS_RUNTIME_COUNT("dse/error_miss", 1);
  CachedError value;
  value.exact = core::exact_error_metrics(cfg, *model);
  value.paper_error = value.exact.error_probability;
  GEAR_OBS_RUNTIME_COUNT("dse/error_insert", 1);
  std::lock_guard<std::mutex> lock(mu_);
  error_cache_.emplace(key, value);
  return value;
}

CachedSynth DseCache::keyed_synth(
    const std::string& key, const std::function<netlist::Netlist()>& build) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = synth_cache_.find(key);
    if (it != synth_cache_.end()) {
      ++hits_;
      GEAR_OBS_RUNTIME_COUNT("dse/keyed_hit", 1);
      return it->second;
    }
    ++misses_;
  }
  GEAR_OBS_RUNTIME_COUNT("dse/keyed_miss", 1);
  const auto rep = synth::synthesize(build(), model_);
  CachedSynth value;
  value.area_luts = rep.area_luts;
  value.carry_elements = rep.carry_elements;
  value.lut_count = rep.lut_count;
  value.lut_levels = rep.lut_levels;
  value.delay_ns = rep.delay_ns;
  value.sum_delay_ns = synth::sum_path_delay(rep);
  GEAR_OBS_RUNTIME_COUNT("dse/keyed_insert", 1);
  std::lock_guard<std::mutex> lock(mu_);
  synth_cache_.emplace(key, value);
  return value;
}

synth::PowerReport DseCache::gear_power(const core::GeArConfig& cfg,
                                        bool with_detection,
                                        std::uint64_t vectors,
                                        std::uint64_t seed) {
  std::ostringstream os;
  os << config_key(cfg, with_detection) << ":pw" << vectors << ":" << seed;
  const std::string key = os.str();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = power_cache_.find(key);
    if (it != power_cache_.end()) {
      ++hits_;
      GEAR_OBS_RUNTIME_COUNT("dse/power_hit", 1);
      return it->second;
    }
    ++misses_;
  }
  GEAR_OBS_RUNTIME_COUNT("dse/power_miss", 1);
  stats::Rng rng = stats::Rng::substream(seed, "dse-power:" + key);
  const auto report = synth::estimate_power(
      netlist::build_gear(cfg, {.with_detection = with_detection}), vectors,
      rng);
  std::lock_guard<std::mutex> lock(mu_);
  power_cache_.emplace(key, report);
  return report;
}

std::uint64_t DseCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t DseCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t DseCache::fast_path_evals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fast_path_evals_;
}

std::size_t DseCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synth_cache_.size();
}

namespace {

/// Formats one synth-map entry as a save_json/save_shards line body.
std::string format_synth_entry(const std::string& key, const CachedSynth& v) {
  char nums[192];
  std::snprintf(nums, sizeof nums,
                "{\"a\": %d, \"c\": %d, \"l\": %d, \"v\": %d, "
                "\"d\": %.17g, \"s\": %.17g}",
                v.area_luts, v.carry_elements, v.lut_count, v.lut_levels,
                v.delay_ns, v.sum_delay_ns);
  return "    \"" + key + "\": " + nums;
}

/// Formats one error-map entry; the "err|" key prefix disambiguates it
/// from synth entries on load.
std::string format_error_entry(const std::string& key, const CachedError& v) {
  char nums[256];
  std::snprintf(nums, sizeof nums,
                "{\"p\": %.17g, \"ep\": %.17g, \"med\": %.17g, "
                "\"mx\": %.17g, \"nd\": %.17g, \"nr\": %.17g, "
                "\"am\": %.17g}",
                v.paper_error, v.exact.error_probability, v.exact.med,
                v.exact.max_ed, v.exact.ned, v.exact.ned_range,
                v.exact.acc_amp_mean);
  return "    \"err|" + key + "\": " + nums;
}

/// FNV-1a (64-bit) of the entry key: the shard router. Any fixed hash
/// works — it only needs to be stable across runs and platforms so a
/// saved shard set reloads onto the same layout.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void DseCache::parse_line_locked(const std::string& line) {
  const std::size_t k0 = line.find('"');
  if (k0 == std::string::npos) return;
  const std::size_t k1 = line.find('"', k0 + 1);
  if (k1 == std::string::npos) return;
  const std::string key = line.substr(k0 + 1, k1 - k0 - 1);
  const char* rest = line.c_str() + k1 + 1;
  CachedSynth v;
  if (std::sscanf(rest,
                  ": {\"a\": %d, \"c\": %d, \"l\": %d, \"v\": %d, "
                  "\"d\": %lg, \"s\": %lg}",
                  &v.area_luts, &v.carry_elements, &v.lut_count,
                  &v.lut_levels, &v.delay_ns, &v.sum_delay_ns) == 6) {
    synth_cache_[key] = v;
    return;
  }
  CachedError e;
  if (key.rfind("err|", 0) == 0 &&
      std::sscanf(rest,
                  ": {\"p\": %lg, \"ep\": %lg, \"med\": %lg, \"mx\": %lg, "
                  "\"nd\": %lg, \"nr\": %lg, \"am\": %lg}",
                  &e.paper_error, &e.exact.error_probability, &e.exact.med,
                  &e.exact.max_ed, &e.exact.ned, &e.exact.ned_range,
                  &e.exact.acc_amp_mean) == 7) {
    error_cache_[key.substr(4)] = e;
  }
}

bool DseCache::save_json(const std::string& path) const {
  // One entry per line, so load_json can parse line-by-line: synth
  // entries carry fields {a,c,l,v,d,s}, error entries {p,ep,med,...};
  // the field names disambiguate on load. %.17g round-trips doubles
  // bit-exactly.
  std::lock_guard<std::mutex> lock(mu_);
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n  \"format\": \"gear-dse-cache-v1\",\n  \"entries\": {\n";
  bool first = true;
  for (const auto& [key, v] : synth_cache_) {
    out << (first ? "" : ",\n") << format_synth_entry(key, v);
    first = false;
  }
  for (const auto& [key, v] : error_cache_) {
    out << (first ? "" : ",\n") << format_error_entry(key, v);
    first = false;
  }
  out << "\n  }\n}\n";
  return out.good();
}

bool DseCache::load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::lock_guard<std::mutex> lock(mu_);
  std::string line;
  while (std::getline(in, line)) parse_line_locked(line);
  return true;
}

bool DseCache::save_shards(const std::string& dir, int shard_count) const {
  if (shard_count < 1) return false;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  // Bucket the entry lines first (maps iterate in sorted key order, so
  // each shard's line sequence is deterministic), then write each shard
  // file in the save_json envelope — an individual shard is itself a
  // valid load_json document.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<std::string>> buckets(
      static_cast<std::size_t>(shard_count));
  for (const auto& [key, v] : synth_cache_) {
    buckets[fnv1a(key) % static_cast<std::uint64_t>(shard_count)].push_back(
        format_synth_entry(key, v));
  }
  for (const auto& [key, v] : error_cache_) {
    buckets[fnv1a("err|" + key) % static_cast<std::uint64_t>(shard_count)]
        .push_back(format_error_entry(key, v));
  }

  for (int i = 0; i < shard_count; ++i) {
    char name[64];
    std::snprintf(name, sizeof name, "shard-%05d-of-%05d.json", i,
                  shard_count);
    std::ofstream out(std::filesystem::path(dir) / name);
    if (!out) return false;
    out << "{\n  \"format\": \"gear-dse-cache-v1\",\n  \"entries\": {\n";
    bool first = true;
    for (const auto& line : buckets[static_cast<std::size_t>(i)]) {
      out << (first ? "" : ",\n") << line;
      first = false;
    }
    out << "\n  }\n}\n";
    if (!out.good()) return false;
  }
  return true;
}

bool DseCache::load_shards(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return false;
  std::vector<std::filesystem::path> shards;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard-", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      shards.push_back(entry.path());
    }
  }
  if (shards.empty()) return false;
  std::sort(shards.begin(), shards.end());

  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& path : shards) {
    std::ifstream in(path);
    if (!in) continue;  // unreadable shard: recover with the rest
    std::string line;
    while (std::getline(in, line)) parse_line_locked(line);
  }
  return true;
}

}  // namespace gear::analysis
