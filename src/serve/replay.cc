#include "serve/replay.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "stats/rng.h"

namespace gear::serve {

namespace {

struct InFlight {
  std::future<Response> future;
  std::vector<stats::OperandPair> operands;  // kept for retry + verification
  int attempt = 1;
};

bool retryable(RejectReason reason) {
  return reason == RejectReason::kQueueFull ||
         reason == RejectReason::kTenantQueueFull;
}

std::uint64_t backoff_delay_ns(const ReplayOptions& opt, int attempt,
                               stats::Rng& rng) {
  double delay = static_cast<double>(opt.backoff_ns);
  for (int i = 1; i < attempt; ++i) delay *= opt.backoff_mult;
  delay = std::min(delay, static_cast<double>(opt.backoff_cap_ns));
  const double jitter = 1.0 + opt.jitter * (2.0 * rng.uniform01() - 1.0);
  delay *= std::max(0.0, jitter);
  return static_cast<std::uint64_t>(delay);
}

/// One client thread: submits requests_per_client logical requests with a
/// bounded in-flight window, retries retryable sheds with backoff+jitter,
/// verifies completed sums against the exact adder.
ReplayReport run_client(ApproxService& service, TenantId tenant, int n_bits,
                        std::size_t tenant_idx, std::size_t client_idx,
                        const ReplayOptions& opt,
                        std::vector<Response>* collect) {
  ReplayReport report;
  stats::Rng rng = stats::Rng::substream(
      opt.seed, "client:" + std::to_string(tenant_idx) + ":" +
                    std::to_string(client_idx));
  const std::uint64_t operand_mask =
      n_bits >= 64 ? ~0ULL : ((1ULL << n_bits) - 1);
  const std::size_t window = std::max<std::size_t>(1, opt.window);

  std::deque<InFlight> inflight;
  std::uint64_t started = 0;

  auto submit_one = [&](std::vector<stats::OperandPair> operands,
                        int attempt) {
    Request req;
    req.tenant = tenant;
    req.operands = operands;  // service consumes its copy; ours is kept
    if (opt.deadline_ns != 0) {
      req.deadline_ns = obs::monotonic_now_ns() + opt.deadline_ns;
    }
    ++report.attempts;
    InFlight f;
    f.future = service.submit(std::move(req));
    f.operands = std::move(operands);
    f.attempt = attempt;
    inflight.push_back(std::move(f));
  };

  auto finalize = [&](const InFlight& f, Response&& resp) {
    switch (resp.status) {
      case RequestStatus::kOk: ++report.ok; break;
      case RequestStatus::kDegraded: ++report.degraded; break;
      case RequestStatus::kExpired: ++report.expired; break;
      case RequestStatus::kRejected: ++report.rejected_final; break;
    }
    report.operations += resp.operations;
    report.reported_wrong += resp.wrong_results;
    report.flagged_wrong += resp.flagged_wrong_results;
    report.safe_mode_ops += resp.safe_mode_ops;
    report.fallback_events += resp.fallback_events;
    report.budget_forced_exact_ops += resp.budget_forced_exact_ops;
    if (opt.verify && !resp.sums.empty()) {
      std::uint64_t mismatches = 0;
      for (std::size_t i = 0; i < f.operands.size(); ++i) {
        const std::uint64_t exact = (f.operands[i].a & operand_mask) +
                                    (f.operands[i].b & operand_mask);
        if (resp.sums[i] != exact) ++mismatches;
      }
      report.verified_mismatches += mismatches;
      // Anything wrong beyond what the response *said* was wrong is
      // silent corruption — the invariant the chaos soak pins at zero.
      // (wrong_results already includes the flagged wrongs.)
      if (mismatches > resp.wrong_results) {
        report.silent_corruptions += mismatches - resp.wrong_results;
      }
    }
    if (collect != nullptr) {
      resp.queue_ns = 0;
      resp.service_ns = 0;
      collect->push_back(std::move(resp));
    }
  };

  auto drain_front = [&] {
    InFlight f = std::move(inflight.front());
    inflight.pop_front();
    Response resp = f.future.get();
    if (resp.status == RequestStatus::kRejected &&
        retryable(resp.reject_reason) && f.attempt <= opt.max_retries) {
      ++report.retried;
      const std::uint64_t delay = backoff_delay_ns(opt, f.attempt, rng);
      if (delay != 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
      }
      submit_one(std::move(f.operands), f.attempt + 1);
      return;
    }
    finalize(f, std::move(resp));
  };

  while (started < opt.requests_per_client || !inflight.empty()) {
    if (started < opt.requests_per_client && inflight.size() < window) {
      std::vector<stats::OperandPair> operands(opt.ops_per_request);
      for (stats::OperandPair& p : operands) {
        p.a = rng.bits(n_bits);
        p.b = rng.bits(n_bits);
      }
      ++started;
      ++report.requests;
      submit_one(std::move(operands), 1);
    } else {
      drain_front();
    }
  }
  return report;
}

}  // namespace

void ReplayReport::merge(const ReplayReport& other) {
  requests += other.requests;
  attempts += other.attempts;
  ok += other.ok;
  degraded += other.degraded;
  expired += other.expired;
  rejected_final += other.rejected_final;
  retried += other.retried;
  operations += other.operations;
  reported_wrong += other.reported_wrong;
  flagged_wrong += other.flagged_wrong;
  safe_mode_ops += other.safe_mode_ops;
  fallback_events += other.fallback_events;
  budget_forced_exact_ops += other.budget_forced_exact_ops;
  verified_mismatches += other.verified_mismatches;
  silent_corruptions += other.silent_corruptions;
}

ReplayReport replay(ApproxService& service, const std::vector<TenantId>& tenants,
                    const ReplayOptions& options,
                    std::vector<std::vector<Response>>* collected) {
  if (collected != nullptr) {
    collected->assign(tenants.size(), {});
  }
  const std::size_t clients = std::max<std::size_t>(1, options.clients_per_tenant);
  std::vector<ReplayReport> reports(tenants.size() * clients);
  std::vector<std::thread> threads;
  threads.reserve(reports.size());
  for (std::size_t ti = 0; ti < tenants.size(); ++ti) {
    const TenantId tenant = tenants[ti];
    const core::GeArConfig* cfg = service.tenant_config(tenant);
    const int n_bits = cfg != nullptr ? cfg->n() : 64;
    for (std::size_t c = 0; c < clients; ++c) {
      // Only client 0's responses are collected: with one writer per slot
      // and submission order == completion-processing order, the slot is
      // the tenant's canonical response sequence.
      std::vector<Response>* slot =
          (collected != nullptr && c == 0) ? &(*collected)[ti] : nullptr;
      ReplayReport* out = &reports[ti * clients + c];
      threads.emplace_back([&service, tenant, n_bits, ti, c, &options, slot,
                            out] {
        *out = run_client(service, tenant, n_bits, ti, c, options, slot);
      });
    }
  }
  for (std::thread& t : threads) t.join();
  ReplayReport total;
  for (const ReplayReport& r : reports) total.merge(r);
  if (obs::enabled() && total.retried != 0) {
    obs::global().add_runtime("serve/retried", total.retried);
  }
  return total;
}

}  // namespace gear::serve
