// Request/response vocabulary of the always-on approximation service.
//
// A request is a batch job — one tenant's list of operand pairs (e.g. the
// adds of one image-kernel tile) — and every request gets exactly one
// response. The service never drops work silently: a request that cannot
// be admitted is *rejected with a reason*, an admitted request whose
// deadline passes is *expired* (counted, promise fulfilled), and a request
// served under degradation says so. See DESIGN.md §5h.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/distributions.h"

namespace gear::serve {

/// Dense tenant handle returned by ApproxService::add_tenant.
using TenantId = int;

/// Why admission control refused a request. kNone means "not rejected".
enum class RejectReason : std::uint8_t {
  kNone = 0,
  kUnknownTenant,    ///< tenant id was never registered
  kEmptyRequest,     ///< no operands
  kOversizedRequest, ///< operands exceed ServiceOptions::max_request_ops
  kQueueFull,        ///< global admitted-backlog bound hit (overload shed)
  kTenantQueueFull,  ///< this tenant's backlog bound hit (isolation shed)
  kDeadlineUnmeetable, ///< deadline already expired at submission
  kShutdown,         ///< service is stopping
};
inline constexpr int kNumRejectReasons = 8;
const char* reject_reason_name(RejectReason reason);

enum class RequestStatus : std::uint8_t {
  kOk,        ///< served in normal mode
  kDegraded,  ///< served, but some ops ran in a safe/forced-exact mode
  kExpired,   ///< admitted, but the deadline passed before completion
  kRejected,  ///< refused at admission; see reject_reason
};
const char* request_status_name(RequestStatus status);

struct Request {
  TenantId tenant = -1;
  std::vector<stats::OperandPair> operands;
  /// Absolute deadline on the obs::monotonic_now_ns() clock; 0 = none.
  /// Expired work is cancelled at the next execution-slice boundary.
  std::uint64_t deadline_ns = 0;
};

/// The per-request result. Everything except the two *_ns fields is a
/// pure function of the tenant's admitted request sequence (§5h
/// determinism contract); queue_ns/service_ns are wall-clock artifacts.
struct Response {
  RequestStatus status = RequestStatus::kRejected;
  RejectReason reject_reason = RejectReason::kNone;

  /// Per-op final sums (N+1 bits including carry-out), in operand order.
  /// Empty for kExpired/kRejected — cancelled work returns no partials.
  std::vector<std::uint64_t> sums;

  // Per-request accounting, mirroring apps::StreamStats semantics.
  std::uint64_t operations = 0;
  std::uint64_t corrected_ops = 0;
  std::uint64_t wrong_results = 0;  ///< residual errors, always reported
  std::uint64_t flagged_ops = 0;
  std::uint64_t flagged_wrong_results = 0;
  std::uint64_t safe_mode_ops = 0;    ///< ops served under a watchdog safe mode
  std::uint64_t fallback_events = 0;  ///< watchdog trips during this request
  std::uint64_t budget_forced_exact_ops = 0;  ///< ops forced exact by the
                                              ///< tenant's error budget

  bool degraded() const {
    return safe_mode_ops != 0 || flagged_ops != 0 ||
           budget_forced_exact_ops != 0;
  }

  // Wall-clock channel (never part of any determinism comparison).
  std::uint64_t queue_ns = 0;    ///< admission -> execution start
  std::uint64_t service_ns = 0;  ///< execution start -> completion
};

/// §5h bit-identity: every Response field except the wall-clock ones.
inline bool deterministic_equal(const Response& x, const Response& y) {
  return x.status == y.status && x.reject_reason == y.reject_reason &&
         x.sums == y.sums && x.operations == y.operations &&
         x.corrected_ops == y.corrected_ops &&
         x.wrong_results == y.wrong_results &&
         x.flagged_ops == y.flagged_ops &&
         x.flagged_wrong_results == y.flagged_wrong_results &&
         x.safe_mode_ops == y.safe_mode_ops &&
         x.fallback_events == y.fallback_events &&
         x.budget_forced_exact_ops == y.budget_forced_exact_ops;
}

}  // namespace gear::serve
