// Replay client for ApproxService: deterministic workload generation,
// bounded retry with exponential backoff + jitter, and end-to-end result
// verification (the silent-corruption check of DESIGN.md §5h).
//
// Each simulated client owns an RNG sub-stream ("client:<tenant>:<idx>")
// so the operand sequence it submits is a pure function of (seed, tenant,
// client index) — the same workload can be replayed against a service at
// any worker count and, with one client per tenant, the per-tenant
// admitted sequence is identical, which is what the determinism tests
// compare. Shed requests (queue-full rejections) are retried up to
// `max_retries` times with capped exponential backoff and multiplicative
// jitter; everything else resolves the request.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.h"
#include "serve/service.h"

namespace gear::serve {

struct ReplayOptions {
  /// Requests each client submits (successfully or not).
  std::uint64_t requests_per_client = 64;
  /// Concurrent client threads per tenant. Use 1 when the per-tenant
  /// submission order must equal the admission order (determinism runs).
  std::size_t clients_per_tenant = 1;
  std::uint64_t ops_per_request = 256;
  /// In-flight window per client: submits run ahead of completions up to
  /// this depth, so the service actually sees a backlog.
  std::size_t window = 8;
  /// Relative deadline applied to every request (0 = none).
  std::uint64_t deadline_ns = 0;
  /// Retry budget per request for retryable sheds (kQueueFull /
  /// kTenantQueueFull); attempts = 1 + max_retries.
  int max_retries = 3;
  std::uint64_t backoff_ns = 200'000;  ///< first retry delay
  double backoff_mult = 2.0;
  std::uint64_t backoff_cap_ns = 20'000'000;
  /// Backoff is scaled by a uniform factor in [1 - jitter, 1 + jitter).
  double jitter = 0.5;
  std::uint64_t seed = stats::Rng::kDefaultSeed;
  /// Recompute every returned sum exactly and count mismatches beyond
  /// what the response itself reported as wrong — the silent-corruption
  /// detector. Costs one exact add per op.
  bool verify = true;
};

/// Aggregated client-side view of one replay run. The service's own
/// ServiceStats is the authoritative server-side ledger; this report adds
/// what only a client can see: retries, end-to-end verification, and the
/// final outcome of each logical request.
struct ReplayReport {
  std::uint64_t requests = 0;        ///< logical requests attempted
  std::uint64_t attempts = 0;        ///< submissions incl. retries
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;
  std::uint64_t expired = 0;
  std::uint64_t rejected_final = 0;  ///< gave up (retries exhausted or
                                     ///< non-retryable rejection)
  std::uint64_t retried = 0;         ///< resubmissions performed
  std::uint64_t operations = 0;      ///< ops in completed responses
  std::uint64_t reported_wrong = 0;  ///< wrong_results the service reported
  std::uint64_t flagged_wrong = 0;
  std::uint64_t safe_mode_ops = 0;
  std::uint64_t fallback_events = 0;
  std::uint64_t budget_forced_exact_ops = 0;
  /// Returned sums that differ from the exact sum *beyond* the response's
  /// own wrong_results count. Zero is the §5h no-silent-corruption
  /// invariant; anything else is a service bug.
  std::uint64_t verified_mismatches = 0;
  std::uint64_t silent_corruptions = 0;

  void merge(const ReplayReport& other);
};

/// Runs clients_per_tenant threads against every tenant in `tenants` and
/// blocks until all logical requests resolved. When `collected` is
/// non-null it receives, per entry i of `tenants`, client 0's completed
/// responses in submission order with wall-clock fields zeroed — directly
/// comparable across runs/worker counts under the §5h contract.
ReplayReport replay(ApproxService& service, const std::vector<TenantId>& tenants,
                    const ReplayOptions& options,
                    std::vector<std::vector<Response>>* collected = nullptr);

}  // namespace gear::serve
