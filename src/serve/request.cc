#include "serve/request.h"

namespace gear::serve {

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kUnknownTenant: return "unknown-tenant";
    case RejectReason::kEmptyRequest: return "empty-request";
    case RejectReason::kOversizedRequest: return "oversized-request";
    case RejectReason::kQueueFull: return "queue-full";
    case RejectReason::kTenantQueueFull: return "tenant-queue-full";
    case RejectReason::kDeadlineUnmeetable: return "deadline-unmeetable";
    case RejectReason::kShutdown: return "shutdown";
  }
  return "?";
}

const char* request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk: return "ok";
    case RequestStatus::kDegraded: return "degraded";
    case RequestStatus::kExpired: return "expired";
    case RequestStatus::kRejected: return "rejected";
  }
  return "?";
}

}  // namespace gear::serve
