// Always-on multi-tenant approximation service.
//
// ApproxService wraps per-tenant StreamAdderEngine instances behind an
// in-process MPSC request queue: any number of client threads submit()
// batch jobs, a fixed worker pool drains them through the bitsliced
// 64-lane path. Robustness is the spine (DESIGN.md §5h):
//
//  * Admission control — a request is either admitted or rejected with a
//    reason (global/tenant backlog bounds, unknown tenant, oversized
//    payload, expired-at-submit deadline, shutdown). Never a silent drop.
//  * Tenant isolation — per-tenant FIFO queues with per-tenant depth
//    bounds, round-robin service, and at most one worker per tenant at a
//    time: one tenant flooding the service sheds *its own* requests and
//    cannot starve or reorder another tenant's stream. Serialized
//    per-tenant execution is also what keeps watchdog and error-budget
//    state a pure function of the tenant's admitted sequence.
//  * Deadlines — per-request absolute deadlines, checked at dequeue and
//    between fixed-size execution slices; expired work is cancelled and
//    answered kExpired (no partial results, no silent loss).
//  * Graceful degradation — each tenant may carry a core::Watchdog
//    (DegradationPolicy) persisted across requests, plus an error budget
//    (max residual wrong results per window of ops) that forces exact
//    adds for the rest of the window when exhausted. Degraded responses
//    say so; a chaos API injects detection faults to exercise the path.
//
// Determinism contract (§5h): for the set of *admitted* requests, every
// Response field except queue_ns/service_ns is bit-identical to a serial
// per-tenant replay of the same request sequences at any worker count.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "apps/stream_engine.h"
#include "core/config.h"
#include "core/correction.h"
#include "core/watchdog.h"
#include "obs/metrics.h"
#include "serve/request.h"

namespace gear::serve {

/// Per-tenant configuration. A tenant's accuracy contract is its GeAr
/// configuration + correction mask; its robustness contract is the
/// degradation policy, error budget and backlog bound.
struct TenantSpec {
  explicit TenantSpec(core::GeArConfig cfg) : config(std::move(cfg)) {}

  core::GeArConfig config;
  std::uint64_t correction_mask = core::Corrector::all_enabled();
  /// Watchdog policy persisted across this tenant's requests. Guarded
  /// tenants ride the windowed bitsliced batch path (watchdog decisions
  /// absorbed block-wise, bit-identical to per-op observation — DESIGN.md
  /// §5j) unless an injected fault or a binding per-op correction budget
  /// forces the scalar per-op path; unguarded tenants take the plain
  /// 64-lane path.
  std::optional<core::DegradationPolicy> degradation;
  /// Pins this tenant to the scalar per-op path (benchmark referee knob:
  /// bench_service races batched guarded tenants against this and asserts
  /// bit-identical responses).
  bool force_scalar_path = false;
  /// Max queued (admitted, unserved) requests before kTenantQueueFull.
  std::size_t queue_cap = 256;
  /// Error budget: at most `error_budget_wrong` residual wrong results
  /// per `error_budget_window` ops; once exceeded, the remainder of the
  /// window is served with forced-exact adds (visible via
  /// Response::budget_forced_exact_ops). window == 0 disables.
  std::uint64_t error_budget_window = 0;
  std::uint64_t error_budget_wrong = 0;
  /// Bucket geometry of the per-tenant wall-clock latency histogram.
  obs::HistogramSpec latency_spec{0.0, 1e8, 64};
};

struct ServiceOptions {
  /// Worker threads; 0 = manual-pump mode (tests drive pump_once()).
  int workers = 2;
  /// Global admitted-backlog bound (requests) before kQueueFull.
  std::size_t queue_cap = 1024;
  /// Requests with more operands are rejected kOversizedRequest.
  std::uint64_t max_request_ops = 1ULL << 20;
  /// Ops per execution slice: the deadline-cancellation granularity. A
  /// multiple of 64 keeps bitsliced lane grouping independent of slicing.
  std::uint64_t slice_ops = 4096;
  /// Max requests drained per tenant visit (round-robin quantum).
  std::size_t max_drain = 8;
};

/// Point-in-time per-tenant accounting. Counter fields are exact — every
/// submitted request is in exactly one terminal bucket or still queued —
/// which is what the no-silent-drop tests assert; the latency histogram
/// is a wall-clock artifact.
struct TenantStats {
  std::string name;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t rejected_by_reason[kNumRejectReasons] = {};
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_degraded = 0;
  std::uint64_t expired = 0;
  std::uint64_t aborted = 0;  ///< admitted, then rejected by non-drain stop()
  std::uint64_t queued = 0;   ///< backlog (incl. in-flight) at snapshot time
  std::uint64_t operations = 0;
  std::uint64_t corrected_ops = 0;
  std::uint64_t wrong_results = 0;
  std::uint64_t flagged_ops = 0;
  std::uint64_t flagged_wrong_results = 0;
  std::uint64_t safe_mode_ops = 0;
  std::uint64_t fallback_events = 0;
  std::uint64_t budget_forced_exact_ops = 0;
  bool in_safe_mode = false;
  obs::FixedHistogram latency_ns;  ///< admission -> completion

  /// Every request accounted exactly once.
  bool conservation_ok() const {
    return submitted == admitted + rejected &&
           admitted == completed_ok + completed_degraded + expired + aborted +
                           queued;
  }
};

struct ServiceStats {
  std::vector<TenantStats> tenants;
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t completed_degraded = 0;
  std::uint64_t expired = 0;
  std::uint64_t aborted = 0;
  std::uint64_t queued = 0;
  std::uint64_t operations = 0;
  std::uint64_t wrong_results = 0;
  /// Submissions naming a tenant id that was never registered; counted in
  /// submitted/rejected but attributable to no tenant bucket.
  std::uint64_t rejected_unknown_tenant = 0;

  bool conservation_ok() const;
};

class ApproxService {
 public:
  explicit ApproxService(ServiceOptions options = {});
  ~ApproxService();  ///< stop(/*drain=*/true)

  ApproxService(const ApproxService&) = delete;
  ApproxService& operator=(const ApproxService&) = delete;

  /// Registers a tenant. Returns its id, or std::nullopt with *error set
  /// to an actionable message (duplicate name, service stopping) — a bad
  /// tenant is a rejected registration, never an abort.
  std::optional<TenantId> add_tenant(std::string name, TenantSpec spec,
                                     std::string* error = nullptr);

  /// Convenience overload validating a uniform (n, r, p) configuration
  /// via GeArConfig::make(); on failure *error carries
  /// GeArConfig::invalid_reason(n, r, p).
  std::optional<TenantId> add_tenant(std::string name, int n, int r, int p,
                                     std::string* error = nullptr);

  /// Submits one request. Always returns a future that will be
  /// fulfilled: immediately with kRejected (+ reason) when admission
  /// refuses it, otherwise when a worker completes, expires or (on
  /// non-drain shutdown) rejects it.
  std::future<Response> submit(Request request);

  /// Stops the service: drain=true serves the admitted backlog first,
  /// drain=false rejects it with kShutdown. Idempotent. New submissions
  /// are rejected kShutdown either way.
  void stop(bool drain = true);

  /// Manual pump for workers == 0 services: performs one tenant visit
  /// (up to max_drain requests); returns the number of requests
  /// completed, 0 when the queue is empty. pump_all() drains everything.
  std::size_t pump_once();
  std::size_t pump_all();

  ServiceStats stats() const;
  std::size_t queue_depth() const;
  const core::GeArConfig* tenant_config(TenantId tenant) const;

  // --- chaos / recovery API (applied at the tenant's next visit) ---------
  /// Injects a detection-network fault into the tenant's engine — the
  /// functional-model equivalent of a netlist FaultSpec on a detect cone
  /// (§5c). Returns false for an unknown tenant.
  bool inject_detect_fault(TenantId tenant,
                           const core::Corrector::DetectFault& fault);
  bool clear_detect_fault(TenantId tenant);
  /// Re-arms a tripped tenant watchdog (operator-driven recovery; with
  /// cooldown_windows > 0 the watchdog also re-arms by itself).
  bool reset_watchdog(TenantId tenant);

 private:
  struct PendingRequest {
    Request request;
    std::promise<Response> promise;
    std::uint64_t admit_ns = 0;
  };

  struct Tenant {
    explicit Tenant(std::string tenant_name, TenantSpec tenant_spec);

    std::string name;
    TenantSpec spec;
    apps::StreamAdderEngine engine;
    /// Persistent across requests; only the tenant's single active
    /// worker touches it (busy handoff through mu_ orders the accesses).
    std::optional<core::Watchdog> watchdog;
    std::deque<PendingRequest> queue;  // guarded by mu_
    bool busy = false;                 // guarded by mu_
    std::size_t inflight = 0;          // popped, not yet completed (mu_)
    // Error-budget window state (active worker only).
    std::uint64_t window_ops = 0;
    std::uint64_t window_wrong = 0;
    bool budget_exhausted = false;
    // Chaos ops staged under mu_, applied by the next active worker.
    std::optional<core::Corrector::DetectFault> staged_fault;  // guarded by mu_
    bool staged_watchdog_reset = false;                        // guarded by mu_
    TenantStats stats;  // guarded by mu_
  };

  /// Rejects under the caller-held lock: counts + fulfills the promise.
  void reject_locked(Tenant* tenant, TenantId id, std::promise<Response> promise,
                     RejectReason reason);
  /// Picks the next ready tenant (round-robin) or nullptr; caller holds
  /// mu_. `advance` moves the round-robin cursor past the pick.
  Tenant* next_ready_locked(bool advance = false);
  /// One tenant visit: drain up to max_drain requests and serve them.
  /// Returns the number of requests completed (0 = nothing ready).
  std::size_t visit_one(std::unique_lock<std::mutex>& lock);
  Response execute(Tenant& tenant, Request& request, std::uint64_t admit_ns);
  void worker_loop();

  ServiceOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::vector<std::unique_ptr<Tenant>> tenants_;  // stable pointers
  std::size_t global_depth_ = 0;
  std::size_t rr_ = 0;  ///< round-robin cursor
  std::uint64_t no_tenant_rejected_ = 0;  ///< unknown-tenant submissions
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gear::serve
