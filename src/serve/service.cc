#include "serve/service.h"

#include <algorithm>
#include <string>
#include <utility>

namespace gear::serve {

namespace {

/// Wall-clock runtime counter with a dynamic (per-reason / per-tenant)
/// name — off the hot path, so the handle-cache macro is not needed.
void runtime_count(const std::string& name, std::uint64_t delta) {
  if (obs::enabled()) obs::global().add_runtime(name, delta);
}

}  // namespace

bool ServiceStats::conservation_ok() const {
  std::uint64_t sub = rejected_unknown_tenant;
  std::uint64_t adm = 0;
  std::uint64_t rej = rejected_unknown_tenant;
  for (const TenantStats& t : tenants) {
    if (!t.conservation_ok()) return false;
    sub += t.submitted;
    adm += t.admitted;
    rej += t.rejected;
  }
  return sub == submitted && adm == admitted && rej == rejected &&
         submitted == admitted + rejected &&
         admitted == completed_ok + completed_degraded + expired + aborted +
                         queued;
}

ApproxService::Tenant::Tenant(std::string tenant_name, TenantSpec tenant_spec)
    : name(std::move(tenant_name)),
      spec(std::move(tenant_spec)),
      engine(spec.degradation
                 ? apps::StreamAdderEngine(spec.config, spec.correction_mask,
                                           *spec.degradation)
                 : apps::StreamAdderEngine(spec.config, spec.correction_mask)),
      watchdog(engine.make_watchdog()) {
  stats.name = name;
  stats.latency_ns.spec = spec.latency_spec;
  stats.latency_ns.counts.assign(
      static_cast<std::size_t>(spec.latency_spec.buckets), 0);
  engine.force_scalar_path(spec.force_scalar_path);
}

ApproxService::ApproxService(ServiceOptions options) : options_(options) {
  if (options_.slice_ops == 0) options_.slice_ops = 1;
  if (options_.max_drain == 0) options_.max_drain = 1;
  const int workers = std::max(0, options_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ApproxService::~ApproxService() { stop(/*drain=*/true); }

std::optional<TenantId> ApproxService::add_tenant(std::string name,
                                                  TenantSpec spec,
                                                  std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    if (error) *error = "tenant '" + name + "': service is stopping";
    return std::nullopt;
  }
  for (const auto& t : tenants_) {
    if (t->name == name) {
      if (error) *error = "tenant '" + name + "': name already registered";
      return std::nullopt;
    }
  }
  tenants_.push_back(std::make_unique<Tenant>(std::move(name), std::move(spec)));
  return static_cast<TenantId>(tenants_.size() - 1);
}

std::optional<TenantId> ApproxService::add_tenant(std::string name, int n,
                                                  int r, int p,
                                                  std::string* error) {
  auto cfg = core::GeArConfig::make(n, r, p);
  if (!cfg) {
    if (error) {
      *error = "tenant '" + name + "': invalid GeAr(N=" + std::to_string(n) +
               ", R=" + std::to_string(r) + ", P=" + std::to_string(p) +
               "): " + core::GeArConfig::invalid_reason(n, r, p);
    }
    return std::nullopt;
  }
  return add_tenant(std::move(name), TenantSpec(*std::move(cfg)), error);
}

void ApproxService::reject_locked(Tenant* tenant, TenantId /*id*/,
                                  std::promise<Response> promise,
                                  RejectReason reason) {
  if (tenant != nullptr) {
    ++tenant->stats.submitted;
    ++tenant->stats.rejected;
    ++tenant->stats.rejected_by_reason[static_cast<int>(reason)];
  } else {
    ++no_tenant_rejected_;
  }
  Response resp;
  resp.status = RequestStatus::kRejected;
  resp.reject_reason = reason;
  promise.set_value(std::move(resp));
  runtime_count(std::string("serve/shed/") + reject_reason_name(reason), 1);
}

std::future<Response> ApproxService::submit(Request request) {
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();
  const std::uint64_t now = obs::monotonic_now_ns();

  std::unique_lock<std::mutex> lock(mu_);
  Tenant* tenant = nullptr;
  if (request.tenant >= 0 &&
      static_cast<std::size_t>(request.tenant) < tenants_.size()) {
    tenant = tenants_[static_cast<std::size_t>(request.tenant)].get();
  }
  RejectReason reason = RejectReason::kNone;
  if (tenant == nullptr) {
    reason = RejectReason::kUnknownTenant;
  } else if (stopping_) {
    reason = RejectReason::kShutdown;
  } else if (request.operands.empty()) {
    reason = RejectReason::kEmptyRequest;
  } else if (request.operands.size() > options_.max_request_ops) {
    reason = RejectReason::kOversizedRequest;
  } else if (request.deadline_ns != 0 && now >= request.deadline_ns) {
    reason = RejectReason::kDeadlineUnmeetable;
  } else if (global_depth_ >= options_.queue_cap) {
    reason = RejectReason::kQueueFull;
  } else if (tenant->queue.size() >= tenant->spec.queue_cap) {
    reason = RejectReason::kTenantQueueFull;
  }
  if (reason != RejectReason::kNone) {
    reject_locked(tenant, request.tenant, std::move(promise), reason);
    return fut;
  }
  ++tenant->stats.submitted;
  ++tenant->stats.admitted;
  tenant->queue.push_back(PendingRequest{std::move(request), std::move(promise),
                                         now});
  ++global_depth_;
  lock.unlock();
  work_cv_.notify_one();
  runtime_count("serve/admitted", 1);
  return fut;
}

Response ApproxService::execute(Tenant& tenant, Request& request,
                                std::uint64_t admit_ns) {
  Response resp;
  const std::uint64_t start = obs::monotonic_now_ns();
  resp.queue_ns = start > admit_ns ? start - admit_ns : 0;

  const std::size_t total = request.operands.size();
  const std::uint64_t deadline = request.deadline_ns;
  const int n_bits = tenant.spec.config.n();
  const std::uint64_t operand_mask =
      n_bits >= 64 ? ~0ULL : ((1ULL << n_bits) - 1);
  const bool budget_on = tenant.spec.error_budget_window != 0;
  core::Watchdog* wd = tenant.watchdog ? &*tenant.watchdog : nullptr;

  resp.sums.resize(total);
  std::size_t done = 0;
  bool expired = deadline != 0 && start >= deadline;
  while (!expired && done < total) {
    const std::size_t count =
        std::min<std::size_t>(options_.slice_ops, total - done);
    const stats::OperandPair* ops = request.operands.data() + done;
    if (budget_on && tenant.budget_exhausted) {
      // Budget blown: serve the rest of the window with exact adds. The
      // degradation is visible (budget_forced_exact_ops), never silent.
      for (std::size_t i = 0; i < count; ++i) {
        resp.sums[done + i] =
            (ops[i].a & operand_mask) + (ops[i].b & operand_mask);
      }
      resp.operations += count;
      resp.budget_forced_exact_ops += count;
      tenant.window_ops += count;
    } else {
      const apps::StreamStats s = tenant.engine.run_with_sums(
          ops, count, resp.sums.data() + done, wd);
      resp.operations += s.operations;
      resp.corrected_ops += s.corrected_ops;
      resp.wrong_results += s.wrong_results;
      resp.flagged_ops += s.flagged_ops;
      resp.flagged_wrong_results += s.flagged_wrong_results;
      resp.safe_mode_ops += s.safe_mode_ops;
      resp.fallback_events += s.fallback_events;
      if (budget_on) {
        tenant.window_ops += s.operations;
        tenant.window_wrong += s.wrong_results;
        if (tenant.window_wrong > tenant.spec.error_budget_wrong) {
          tenant.budget_exhausted = true;
        }
      }
    }
    if (budget_on && tenant.window_ops >= tenant.spec.error_budget_window) {
      tenant.window_ops = 0;
      tenant.window_wrong = 0;
      tenant.budget_exhausted = false;
    }
    done += count;
    if (deadline != 0 && done < total &&
        obs::monotonic_now_ns() >= deadline) {
      expired = true;
    }
  }

  if (expired) {
    // Cancelled: no partial results leave the service. The op counters
    // keep what was executed before cancellation — that work did feed the
    // tenant's watchdog / error budget and is reported, not hidden.
    resp.sums.clear();
    resp.status = RequestStatus::kExpired;
  } else {
    resp.status = resp.degraded() ? RequestStatus::kDegraded
                                  : RequestStatus::kOk;
  }
  resp.service_ns = obs::monotonic_now_ns() - start;
  return resp;
}

ApproxService::Tenant* ApproxService::next_ready_locked(bool advance) {
  const std::size_t n = tenants_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (rr_ + i) % n;
    Tenant* t = tenants_[idx].get();
    if (!t->busy && !t->queue.empty()) {
      if (advance) rr_ = (idx + 1) % n;
      return t;
    }
  }
  return nullptr;
}

std::size_t ApproxService::visit_one(std::unique_lock<std::mutex>& lock) {
  Tenant* t = next_ready_locked(/*advance=*/true);
  if (t == nullptr) return 0;

  // Stage the tenant's pending chaos ops; they apply at this visit's
  // request boundary (never mid-request, never from a foreign thread).
  std::optional<core::Corrector::DetectFault> fault =
      std::exchange(t->staged_fault, std::nullopt);
  const bool wd_reset = std::exchange(t->staged_watchdog_reset, false);

  std::vector<PendingRequest> batch;
  const std::size_t take = std::min(options_.max_drain, t->queue.size());
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(t->queue.front()));
    t->queue.pop_front();
  }
  t->busy = true;
  t->inflight = batch.size();
  lock.unlock();

  // From here until busy clears, this thread is the tenant's only
  // executor: engine, watchdog and budget state need no lock.
  if (fault) {
    if (fault->active()) {
      t->engine.inject_detect_fault(*fault);
    } else {
      t->engine.clear_detect_fault();
    }
  }
  if (wd_reset && t->watchdog) t->watchdog->reset();

  std::vector<Response> responses;
  responses.reserve(batch.size());
  for (PendingRequest& pr : batch) {
    responses.push_back(execute(*t, pr.request, pr.admit_ns));
  }

  lock.lock();
  std::uint64_t expired_count = 0;
  std::uint64_t degraded_count = 0;
  for (const Response& r : responses) {
    TenantStats& s = t->stats;
    switch (r.status) {
      case RequestStatus::kOk: ++s.completed_ok; break;
      case RequestStatus::kDegraded:
        ++s.completed_degraded;
        ++degraded_count;
        break;
      case RequestStatus::kExpired:
        ++s.expired;
        ++expired_count;
        break;
      case RequestStatus::kRejected: break;  // unreachable here
    }
    s.operations += r.operations;
    s.corrected_ops += r.corrected_ops;
    s.wrong_results += r.wrong_results;
    s.flagged_ops += r.flagged_ops;
    s.flagged_wrong_results += r.flagged_wrong_results;
    s.safe_mode_ops += r.safe_mode_ops;
    s.fallback_events += r.fallback_events;
    s.budget_forced_exact_ops += r.budget_forced_exact_ops;
    s.latency_ns.record(static_cast<double>(r.queue_ns + r.service_ns));
  }
  t->stats.in_safe_mode = t->watchdog && t->watchdog->in_safe_mode();
  t->inflight = 0;
  t->busy = false;
  global_depth_ -= batch.size();
  const std::string tenant_name = t->name;
  const obs::HistogramSpec latency_spec = t->spec.latency_spec;
  lock.unlock();
  work_cv_.notify_all();

  runtime_count("serve/completed", batch.size());
  if (expired_count != 0) runtime_count("serve/expired", expired_count);
  if (degraded_count != 0) runtime_count("serve/degraded", degraded_count);
  if (obs::enabled()) {
    for (const Response& r : responses) {
      obs::global().record_runtime(
          "serve/latency_ns/" + tenant_name, latency_spec,
          static_cast<double>(r.queue_ns + r.service_ns));
    }
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }
  lock.lock();
  return batch.size();
}

void ApproxService::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return next_ready_locked() != nullptr ||
             (stopping_ && global_depth_ == 0);
    });
    if (next_ready_locked() == nullptr) {
      if (stopping_ && global_depth_ == 0) return;
      continue;
    }
    visit_one(lock);
  }
}

void ApproxService::stop(bool drain) {
  std::vector<std::promise<Response>> flushed;
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (!drain) {
      for (auto& t : tenants_) {
        while (!t->queue.empty()) {
          PendingRequest pr = std::move(t->queue.front());
          t->queue.pop_front();
          --global_depth_;
          ++t->stats.aborted;
          flushed.push_back(std::move(pr.promise));
        }
      }
    }
    to_join.swap(workers_);
  }
  work_cv_.notify_all();
  for (std::promise<Response>& p : flushed) {
    Response resp;
    resp.status = RequestStatus::kRejected;
    resp.reject_reason = RejectReason::kShutdown;
    p.set_value(std::move(resp));
    runtime_count("serve/aborted", 1);
  }
  // Manual-pump services have no workers to drain the backlog; a draining
  // stop serves it inline so every admitted future still resolves.
  if (drain && options_.workers <= 0) pump_all();
  for (std::thread& w : to_join) {
    if (w.joinable()) w.join();
  }
}

std::size_t ApproxService::pump_once() {
  std::unique_lock<std::mutex> lock(mu_);
  return visit_one(lock);
}

std::size_t ApproxService::pump_all() {
  std::size_t total = 0;
  for (;;) {
    const std::size_t n = pump_once();
    if (n == 0) return total;
    total += n;
  }
}

ServiceStats ApproxService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServiceStats out;
  out.rejected_unknown_tenant = no_tenant_rejected_;
  out.submitted = no_tenant_rejected_;
  out.rejected = no_tenant_rejected_;
  out.tenants.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    TenantStats s = t->stats;
    s.queued = t->queue.size() + t->inflight;
    out.submitted += s.submitted;
    out.admitted += s.admitted;
    out.rejected += s.rejected;
    out.completed_ok += s.completed_ok;
    out.completed_degraded += s.completed_degraded;
    out.expired += s.expired;
    out.aborted += s.aborted;
    out.queued += s.queued;
    out.operations += s.operations;
    out.wrong_results += s.wrong_results;
    out.tenants.push_back(std::move(s));
  }
  return out;
}

std::size_t ApproxService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_depth_;
}

const core::GeArConfig* ApproxService::tenant_config(TenantId tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= tenants_.size()) {
    return nullptr;
  }
  // Stable: tenants_ holds unique_ptrs and specs are immutable once added.
  return &tenants_[static_cast<std::size_t>(tenant)]->spec.config;
}

bool ApproxService::inject_detect_fault(
    TenantId tenant, const core::Corrector::DetectFault& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= tenants_.size()) {
    return false;
  }
  tenants_[static_cast<std::size_t>(tenant)]->staged_fault = fault;
  return true;
}

bool ApproxService::clear_detect_fault(TenantId tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= tenants_.size()) {
    return false;
  }
  // An inactive staged fault means "clear at the next visit".
  tenants_[static_cast<std::size_t>(tenant)]->staged_fault =
      core::Corrector::DetectFault{};
  return true;
}

bool ApproxService::reset_watchdog(TenantId tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= tenants_.size()) {
    return false;
  }
  Tenant* t = tenants_[static_cast<std::size_t>(tenant)].get();
  if (!t->watchdog) return false;
  t->staged_watchdog_reset = true;
  return true;
}

}  // namespace gear::serve
