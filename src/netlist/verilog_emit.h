// Structural Verilog emission from a gate-level netlist.
//
// Together with core/verilog_gen.h (behavioural GeAr RTL) this reproduces
// the paper's open-source RTL deliverable: every circuit the benchmarks
// synthesize can be dumped as Verilog-2001 netlists for external tools.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace gear::netlist {

/// Emits the netlist as a structural Verilog module (assign-style).
std::string to_verilog(const Netlist& nl);

}  // namespace gear::netlist
