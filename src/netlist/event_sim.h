// Event-driven gate-level timing simulation.
//
// Static timing (synth/timing.h) reports the structural worst case; the
// event simulator answers the dynamic questions: when does the output
// actually settle for a given input transition, and how many spurious
// transitions (glitches) occur on the way? Glitch counts matter because
// carry chains glitch heavily — one reason approximate adders' shorter
// chains save switching energy in practice.
//
// Model: every gate has an inertial-free unit transport delay by kind
// (configurable); primary inputs switch at t=0; events propagate until
// quiescence. Gate evaluation is zero-width (no pulse filtering), which
// upper-bounds glitching.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netlist/fault.h"
#include "netlist/netlist.h"
#include "stats/rng.h"

namespace gear::netlist {

/// Per-kind transport delays in arbitrary time units.
struct GateDelays {
  double logic = 1.0;   ///< NOT/AND/OR/XOR/... and MUX
  double fa_sum = 1.0;  ///< FaSum from any input
  double fa_carry = 0.2;///< FaCarry (dedicated chain is fast)

  double of(GateKind kind) const {
    if (kind == GateKind::kFaCarry) return fa_carry;
    if (kind == GateKind::kFaSum) return fa_sum;
    return logic;
  }
};

struct EventSimResult {
  double settle_time = 0.0;        ///< last output transition time
  std::uint64_t transitions = 0;   ///< total net transitions (incl. final)
  std::uint64_t glitches = 0;      ///< transitions beyond the minimum
  std::map<std::string, core::BitVec> outputs;
  /// Faulted runs only: outputs differ from the fault-free final state.
  bool corrupted = false;
};

class EventSimulator {
 public:
  /// Takes the netlist by value (it is cheaply copyable), so simulators
  /// can be built from temporaries without lifetime pitfalls.
  explicit EventSimulator(Netlist nl, GateDelays delays = {});

  /// Applies `from` at t=-inf (settled), then switches to `to` at t=0 and
  /// propagates to quiescence. Input maps are port-name -> value.
  EventSimResult step(const std::map<std::string, core::BitVec>& from,
                      const std::map<std::string, core::BitVec>& to);

  /// step() with a fault injected. A stuck-at holds its net for the whole
  /// run (including the initial settled state). A transient flips the net
  /// once at `fault.time` (>= 0): if the strike lands while the cone is
  /// still settling, a later re-evaluation of the driver can overwrite the
  /// flipped value — electrical masking — whereas a strike after
  /// quiescence always propagates and re-settles the downstream cone.
  /// `result.corrupted` compares the final state against the fault-free
  /// settle of `to`; glitch accounting is relative to the same reference
  /// and saturates at zero.
  EventSimResult step_with_fault(const std::map<std::string, core::BitVec>& from,
                                 const std::map<std::string, core::BitVec>& to,
                                 const FaultSpec& fault);

  /// Convenience for two-operand adders: transition (a0,b0) -> (a1,b1).
  EventSimResult step_add(std::uint64_t a0, std::uint64_t b0, std::uint64_t a1,
                          std::uint64_t b1);

  /// Average dynamic behaviour over `pairs` random back-to-back operand
  /// transitions.
  struct Profile {
    double mean_settle = 0.0;
    double max_settle = 0.0;
    double mean_transitions = 0.0;
    double mean_glitches = 0.0;
  };
  Profile profile(std::uint64_t pairs, stats::Rng& rng);

 private:
  EventSimResult step_impl(const std::map<std::string, core::BitVec>& from,
                           const std::map<std::string, core::BitVec>& to,
                           const FaultSpec* fault);
  void settle(const std::map<std::string, core::BitVec>& inputs,
              std::vector<bool>& value, const FaultSpec* fault = nullptr) const;

  Netlist nl_;
  GateDelays delays_;
  std::vector<std::vector<std::size_t>> fanout_gates_;  // net -> gate indices
};

}  // namespace gear::netlist
