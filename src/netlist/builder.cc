#include "netlist/builder.h"

#include <cassert>

namespace gear::netlist {

std::size_t Builder::GateKeyHash::operator()(const GateKey& k) const {
  std::size_t h = static_cast<std::size_t>(k.kind) * 0x9e3779b97f4a7c15ULL;
  for (NetId n : k.inputs) {
    h ^= n + 0x9e3779b9U + (h << 6) + (h >> 2);
  }
  return h;
}

Bus Builder::input(const std::string& name, int width) {
  Bus bus;
  bus.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) bus.push_back(nl_.new_net());
  nl_.add_input(name, bus);
  return bus;
}

void Builder::output(const std::string& name, const Bus& bus) {
  nl_.add_output(name, bus);
}

void Builder::output(const std::string& name, NetId net) {
  nl_.add_output(name, {net});
}

NetId Builder::gate(GateKind kind, std::vector<NetId> inputs) {
  // Normalise commutative inputs so a&b and b&a share one gate.
  switch (kind) {
    case GateKind::kAnd2:
    case GateKind::kOr2:
    case GateKind::kXor2:
    case GateKind::kNand2:
    case GateKind::kNor2:
    case GateKind::kXnor2:
      if (inputs[0] > inputs[1]) std::swap(inputs[0], inputs[1]);
      break;
    default:
      break;
  }
  GateKey key{kind, inputs};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  const NetId out = nl_.add_gate(kind, std::move(key.inputs));
  cache_.emplace(GateKey{kind, nl_.gates().back().inputs}, out);
  return out;
}

NetId Builder::const0() { return gate(GateKind::kConst0, {}); }
NetId Builder::const1() { return gate(GateKind::kConst1, {}); }
NetId Builder::not_(NetId a) { return gate(GateKind::kNot, {a}); }
NetId Builder::and_(NetId a, NetId b) { return gate(GateKind::kAnd2, {a, b}); }
NetId Builder::or_(NetId a, NetId b) { return gate(GateKind::kOr2, {a, b}); }
NetId Builder::xor_(NetId a, NetId b) { return gate(GateKind::kXor2, {a, b}); }
NetId Builder::nand_(NetId a, NetId b) { return gate(GateKind::kNand2, {a, b}); }
NetId Builder::nor_(NetId a, NetId b) { return gate(GateKind::kNor2, {a, b}); }
NetId Builder::xnor_(NetId a, NetId b) { return gate(GateKind::kXnor2, {a, b}); }
NetId Builder::mux(NetId sel, NetId d0, NetId d1) {
  return gate(GateKind::kMux2, {sel, d0, d1});
}

NetId Builder::and_tree(const Bus& bits) {
  assert(!bits.empty());
  Bus level = bits;
  while (level.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(and_(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NetId Builder::or_tree(const Bus& bits) {
  assert(!bits.empty());
  Bus level = bits;
  while (level.size() > 1) {
    Bus next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(or_(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

std::pair<NetId, NetId> Builder::full_adder(NetId a, NetId b, NetId cin) {
  const NetId s = gate(GateKind::kFaSum, {a, b, cin});
  const NetId c = gate(GateKind::kFaCarry, {a, b, cin});
  return {s, c};
}

AdderBits Builder::ripple_adder(const Bus& a, const Bus& b, NetId cin) {
  assert(a.size() == b.size());
  AdderBits out;
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto [s, c] = full_adder(a[i], b[i], carry);
    out.sum.push_back(s);
    carry = c;
  }
  out.carry_out = carry;
  return out;
}

NetId Builder::carry_generator(const Bus& a, const Bus& b, NetId cin) {
  assert(a.size() == b.size());
  NetId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    carry = gate(GateKind::kFaCarry, {a[i], b[i], carry});
  }
  return carry;
}

NetId Builder::cla_group_generate(const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  assert(!a.empty());
  // Leaf (G, P) per bit, then balanced combine:
  //   (G, P) = (G_hi | P_hi & G_lo, P_hi & P_lo).
  std::vector<std::pair<NetId, NetId>> level;
  for (std::size_t i = 0; i < a.size(); ++i) {
    level.emplace_back(and_(a[i], b[i]), xor_(a[i], b[i]));
  }
  while (level.size() > 1) {
    std::vector<std::pair<NetId, NetId>> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const auto [g_lo, p_lo] = level[i];
      const auto [g_hi, p_hi] = level[i + 1];
      next.emplace_back(or_(g_hi, and_(p_hi, g_lo)), and_(p_hi, p_lo));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0].first;
}

AdderBits Builder::prefix_adder(const Bus& a, const Bus& b, NetId cin) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  std::vector<NetId> g(n), p(n);
  for (std::size_t i = 0; i < n; ++i) {
    g[i] = and_(a[i], b[i]);
    p[i] = xor_(a[i], b[i]);
  }
  // Kogge-Stone prefix: after the last level, G[i] is the carry out of
  // bits [0, i] assuming zero carry-in; cin is folded in afterwards.
  std::vector<NetId> gg = g, pp = p;
  for (std::size_t dist = 1; dist < n; dist *= 2) {
    std::vector<NetId> ng = gg, np = pp;
    for (std::size_t i = dist; i < n; ++i) {
      ng[i] = or_(gg[i], and_(pp[i], gg[i - dist]));
      np[i] = and_(pp[i], pp[i - dist]);
    }
    gg = std::move(ng);
    pp = std::move(np);
  }
  AdderBits out;
  // carry into bit i: c0 = cin; c_i = GG[i-1] | PP[i-1] & cin.
  NetId carry = cin;
  for (std::size_t i = 0; i < n; ++i) {
    out.sum.push_back(xor_(p[i], carry));
    carry = or_(gg[i], and_(pp[i], cin));
  }
  out.carry_out = carry;
  return out;
}

Bus Builder::xor_bus(const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(xor_(a[i], b[i]));
  return out;
}

Bus Builder::or_bus(const Bus& a, const Bus& b) {
  assert(a.size() == b.size());
  Bus out;
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(or_(a[i], b[i]));
  return out;
}

Bus Builder::mux_bus(NetId sel, const Bus& d0, const Bus& d1) {
  assert(d0.size() == d1.size());
  Bus out;
  for (std::size_t i = 0; i < d0.size(); ++i) out.push_back(mux(sel, d0[i], d1[i]));
  return out;
}

Bus Builder::slice(const Bus& bus, int lo, int len) {
  assert(lo >= 0 && len >= 0 &&
         static_cast<std::size_t>(lo + len) <= bus.size());
  return Bus(bus.begin() + lo, bus.begin() + lo + len);
}

}  // namespace gear::netlist
