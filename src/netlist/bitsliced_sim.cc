#include "netlist/bitsliced_sim.h"

#include <algorithm>
#include <cassert>

namespace gear::netlist {

namespace {

/// Lane-parallel gate evaluation: the bitwise form of eval_gate, one bit
/// per lane. `i0..i2` are the packed input-net words (unused ones 0).
inline std::uint64_t eval_gate_word(GateKind kind, std::uint64_t i0,
                                    std::uint64_t i1, std::uint64_t i2) {
  switch (kind) {
    case GateKind::kConst0: return 0;
    case GateKind::kConst1: return ~std::uint64_t{0};
    case GateKind::kBuf: return i0;
    case GateKind::kNot: return ~i0;
    case GateKind::kAnd2: return i0 & i1;
    case GateKind::kOr2: return i0 | i1;
    case GateKind::kXor2: return i0 ^ i1;
    case GateKind::kNand2: return ~(i0 & i1);
    case GateKind::kNor2: return ~(i0 | i1);
    case GateKind::kXnor2: return ~(i0 ^ i1);
    case GateKind::kMux2: return (i0 & i2) | (~i0 & i1);
    case GateKind::kFaSum: return i0 ^ i1 ^ i2;
    case GateKind::kFaCarry: return (i0 & i1) | (i2 & (i0 ^ i1));
  }
  return 0;
}

}  // namespace

BitslicedNetSim::BitslicedNetSim(const Netlist& nl) : nl_(nl) {
  const std::size_t nets = nl.net_count();
  inputs_.assign(nets, 0);
  good_.assign(nets, 0);
  faulty_vals_.assign(nets, 0);
  invert_.assign(nets, 0);
  stuck0_.assign(nets, 0);
  stuck1_.assign(nets, 0);
  gates_.reserve(nl.gate_count());
  for (const Gate& g : nl.gates()) {
    FlatGate f;
    f.kind = g.kind;
    for (int i = 0; i < 3; ++i) {
      f.in[i] = i < static_cast<int>(g.inputs.size())
                    ? g.inputs[static_cast<std::size_t>(i)]
                    : NetId{0};
    }
    f.out = g.output;
    gates_.push_back(f);
  }
}

void BitslicedNetSim::clear() {
  std::fill(inputs_.begin(), inputs_.end(), std::uint64_t{0});
  for (NetId n : touched_) {
    invert_[n] = 0;
    stuck0_[n] = 0;
    stuck1_[n] = 0;
  }
  touched_.clear();
}

void BitslicedNetSim::load_lane(int lane, const PortVector& inputs) {
  assert(lane >= 0 && lane < kLanes);
  const std::uint64_t bit = std::uint64_t{1} << lane;
  for (const auto& port : nl_.inputs()) {
    const auto it = inputs.find(port.name);
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      const bool v = it != inputs.end() &&
                     static_cast<int>(i) < it->second.width() &&
                     it->second.bit(static_cast<int>(i));
      std::uint64_t& w = inputs_[port.nets[i]];
      w = v ? (w | bit) : (w & ~bit);
    }
  }
}

void BitslicedNetSim::set_fault(int lane, const FaultSpec& fault) {
  assert(lane >= 0 && lane < kLanes);
  assert(fault.net < nl_.net_count());
  const std::uint64_t bit = std::uint64_t{1} << lane;
  if (invert_[fault.net] == 0 && stuck0_[fault.net] == 0 &&
      stuck1_[fault.net] == 0) {
    touched_.push_back(fault.net);
  }
  switch (fault.kind) {
    case FaultKind::kStuckAt0: stuck0_[fault.net] |= bit; break;
    case FaultKind::kStuckAt1: stuck1_[fault.net] |= bit; break;
    case FaultKind::kTransient: invert_[fault.net] |= bit; break;
  }
}

void BitslicedNetSim::apply_fault_masks(std::vector<std::uint64_t>& v,
                                        NetId n) const {
  // Each lane carries at most one fault, so the three masks are disjoint
  // per bit and the order below matches eval_all: stuck-at overrides,
  // transient inverts the settled value.
  v[n] = ((v[n] | stuck1_[n]) & ~stuck0_[n]) ^ invert_[n];
}

void BitslicedNetSim::forward(std::vector<std::uint64_t>& v,
                              bool faulty) const {
  std::copy(inputs_.begin(), inputs_.end(), v.begin());
  if (faulty) {
    // Faults on primary-input nets apply before any gate reads them,
    // mirroring eval_all's pre-pass.
    for (NetId n : touched_) {
      if (nl_.driver(n) < 0) apply_fault_masks(v, n);
    }
    for (const FlatGate& g : gates_) {
      const std::uint64_t w =
          eval_gate_word(g.kind, v[g.in[0]], v[g.in[1]], v[g.in[2]]);
      v[g.out] = ((w | stuck1_[g.out]) & ~stuck0_[g.out]) ^ invert_[g.out];
    }
  } else {
    for (const FlatGate& g : gates_) {
      v[g.out] = eval_gate_word(g.kind, v[g.in[0]], v[g.in[1]], v[g.in[2]]);
    }
  }
}

void BitslicedNetSim::run(bool faulty) {
  forward(faulty ? faulty_vals_ : good_, faulty);
}

std::uint64_t BitslicedNetSim::port_diff_lanes(const Port& port) const {
  std::uint64_t diff = 0;
  for (NetId n : port.nets) diff |= good_[n] ^ faulty_vals_[n];
  return diff;
}

std::uint64_t BitslicedNetSim::lane_u64(const std::vector<std::uint64_t>& v,
                                        const Port& port, int lane) {
  // BitVec::to_u64 semantics: the low 64 bits of the port value.
  const int width = std::min<int>(64, static_cast<int>(port.nets.size()));
  std::uint64_t out = 0;
  for (int i = 0; i < width; ++i) {
    out |= ((v[port.nets[static_cast<std::size_t>(i)]] >> lane) & 1ULL)
           << i;
  }
  return out;
}

std::uint64_t BitslicedNetSim::good_lane_u64(const Port& port,
                                             int lane) const {
  return lane_u64(good_, port, lane);
}

std::uint64_t BitslicedNetSim::faulty_lane_u64(const Port& port,
                                               int lane) const {
  return lane_u64(faulty_vals_, port, lane);
}

std::map<std::string, core::BitVec> BitslicedNetSim::good_outputs(
    int lane) const {
  std::map<std::string, core::BitVec> out;
  for (const auto& port : nl_.outputs()) {
    core::BitVec v(static_cast<int>(port.nets.size()));
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      v.set_bit(static_cast<int>(i), (good_[port.nets[i]] >> lane) & 1ULL);
    }
    out[port.name] = v;
  }
  return out;
}

}  // namespace gear::netlist
