// Structural netlist construction helpers with hash-consing.
//
// The builder deduplicates structurally identical gates (same kind, same
// input nets), so overlapping-window adders such as ACA-I automatically
// share their common propagate/generate logic — mirroring what logic
// synthesis would do before technology mapping.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "netlist/netlist.h"

namespace gear::netlist {

/// A bundle of nets forming a little-endian bus.
using Bus = std::vector<NetId>;

/// Sum and carry-out of an adder block.
struct AdderBits {
  Bus sum;
  NetId carry_out = kInvalidNet;
};

class Builder {
 public:
  explicit Builder(std::string name) : nl_(std::move(name)) {}

  /// Declares a primary input bus of `width` nets.
  Bus input(const std::string& name, int width);

  /// Declares an output port.
  void output(const std::string& name, const Bus& bus);
  void output(const std::string& name, NetId net);

  /// Architectural region stamped on subsequently built gates; see
  /// Netlist::set_region. Hash-consed gates keep their first region.
  void region(const std::string& name) { nl_.set_region(name); }

  NetId const0();
  NetId const1();

  NetId not_(NetId a);
  NetId and_(NetId a, NetId b);
  NetId or_(NetId a, NetId b);
  NetId xor_(NetId a, NetId b);
  NetId nand_(NetId a, NetId b);
  NetId nor_(NetId a, NetId b);
  NetId xnor_(NetId a, NetId b);
  /// sel ? d1 : d0
  NetId mux(NetId sel, NetId d0, NetId d1);

  /// Balanced reduction trees.
  NetId and_tree(const Bus& bits);
  NetId or_tree(const Bus& bits);

  /// Full adder using the carry-chain macro gates.
  std::pair<NetId, NetId> full_adder(NetId a, NetId b, NetId cin);

  /// Ripple-carry adder over equal-width buses.
  AdderBits ripple_adder(const Bus& a, const Bus& b, NetId cin);

  /// Carry-only ripple chain (an ETAII "carry generator unit"): returns
  /// the carry out of a + b + cin without any sum gates.
  NetId carry_generator(const Bus& a, const Bus& b, NetId cin);

  /// Hierarchical carry-lookahead group generate over a+b (cin = 0),
  /// built as a balanced (G,P) combine tree — GDA's prediction unit.
  NetId cla_group_generate(const Bus& a, const Bus& b);

  /// Parallel-prefix (Kogge-Stone) adder: all carries via a log-depth
  /// prefix tree.
  AdderBits prefix_adder(const Bus& a, const Bus& b, NetId cin);

  /// Bitwise helpers over equal-width buses.
  Bus xor_bus(const Bus& a, const Bus& b);
  Bus or_bus(const Bus& a, const Bus& b);
  Bus mux_bus(NetId sel, const Bus& d0, const Bus& d1);

  /// Bus slice [lo, lo+len).
  static Bus slice(const Bus& bus, int lo, int len);

  Netlist take() && { return std::move(nl_); }
  const Netlist& peek() const { return nl_; }

 private:
  NetId gate(GateKind kind, std::vector<NetId> inputs);
  struct GateKey {
    GateKind kind;
    std::vector<NetId> inputs;
    bool operator==(const GateKey&) const = default;
  };
  struct GateKeyHash {
    std::size_t operator()(const GateKey& k) const;
  };

  Netlist nl_;
  std::unordered_map<GateKey, NetId, GateKeyHash> cache_;
};

}  // namespace gear::netlist
