#include "netlist/dot.h"

#include <sstream>

namespace gear::netlist {

std::string to_dot(const Netlist& nl) {
  std::ostringstream os;
  os << "digraph \"" << nl.name() << "\" {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"monospace\"];\n";
  for (const auto& port : nl.inputs()) {
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      os << "  n" << port.nets[i] << " [shape=box,label=\"" << port.name << "["
         << i << "]\"];\n";
    }
  }
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    const Gate& g = nl.gates()[gi];
    const bool macro = is_carry_macro(g.kind);
    os << "  n" << g.output << " [shape=" << (macro ? "diamond" : "ellipse")
       << ",label=\"" << gate_kind_name(g.kind) << "\""
       << (macro ? ",style=filled,fillcolor=lightblue" : "") << "];\n";
    for (NetId in : g.inputs) {
      os << "  n" << in << " -> n" << g.output << ";\n";
    }
  }
  for (const auto& port : nl.outputs()) {
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      os << "  out_" << port.name << "_" << i << " [shape=box,label=\""
         << port.name << "[" << i << "]\"];\n";
      os << "  n" << port.nets[i] << " -> out_" << port.name << "_" << i
         << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace gear::netlist
