#include "netlist/transform.h"

#include <cassert>
#include <optional>
#include <vector>

#include "netlist/builder.h"

namespace gear::netlist {

namespace {

/// Resolution of an old net in the specialized design.
struct Resolved {
  std::optional<bool> constant;  // known value
  NetId alias = kInvalidNet;     // forwards to another OLD net (pre-fold)
  bool is_alias() const { return alias != kInvalidNet; }
};

}  // namespace

Netlist specialize(const Netlist& nl,
                   const std::map<std::string, std::uint64_t>& tied) {
  const std::size_t nets = nl.net_count();
  std::vector<Resolved> res(nets);

  // Seed tied input bits.
  for (const auto& port : nl.inputs()) {
    auto it = tied.find(port.name);
    if (it == tied.end()) continue;
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      res[port.nets[i]].constant = (it->second >> i) & 1ULL;
    }
  }

  // Chase alias chains to a representative old net.
  auto canon = [&](NetId n) {
    while (res[n].is_alias() && !res[n].constant) n = res[n].alias;
    return n;
  };
  auto known = [&](NetId n) -> std::optional<bool> {
    return res[canon(n)].constant;
  };

  // Forward fold. Gates whose output stays live keep their kind; folded
  // gates become constants or aliases.
  std::vector<bool> gate_live(nl.gates().size(), false);
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    const Gate& g = nl.gates()[gi];
    const NetId out = g.output;

    if (g.kind == GateKind::kConst0 || g.kind == GateKind::kConst1) {
      res[out].constant = g.kind == GateKind::kConst1;
      continue;
    }
    if (is_carry_macro(g.kind)) {
      gate_live[gi] = true;  // never folded (keeps carry-chain mapping)
      continue;
    }

    std::vector<std::optional<bool>> in;
    in.reserve(g.inputs.size());
    bool all_known = true;
    for (NetId i : g.inputs) {
      in.push_back(known(i));
      all_known &= in.back().has_value();
    }
    if (all_known) {
      std::vector<bool> bits;
      for (const auto& v : in) bits.push_back(*v);
      res[out].constant = eval_gate(g.kind, bits);
      continue;
    }

    // Partial folds.
    auto alias_to = [&](std::size_t idx) { res[out].alias = canon(g.inputs[idx]); };
    switch (g.kind) {
      case GateKind::kBuf:
        alias_to(0);
        continue;
      case GateKind::kMux2:
        if (in[0]) {
          alias_to(*in[0] ? 2 : 1);
          continue;
        }
        if (in[1] && in[2] && *in[1] == *in[2]) {
          res[out].constant = *in[1];
          continue;
        }
        break;
      case GateKind::kAnd2:
        if ((in[0] && !*in[0]) || (in[1] && !*in[1])) {
          res[out].constant = false;
          continue;
        }
        if (in[0] && *in[0]) { alias_to(1); continue; }
        if (in[1] && *in[1]) { alias_to(0); continue; }
        break;
      case GateKind::kOr2:
        if ((in[0] && *in[0]) || (in[1] && *in[1])) {
          res[out].constant = true;
          continue;
        }
        if (in[0] && !*in[0]) { alias_to(1); continue; }
        if (in[1] && !*in[1]) { alias_to(0); continue; }
        break;
      case GateKind::kXor2:
        if (in[0] && !*in[0]) { alias_to(1); continue; }
        if (in[1] && !*in[1]) { alias_to(0); continue; }
        break;  // xor-with-1 would need a NOT; keep the gate
      default:
        break;
    }
    gate_live[gi] = true;
  }

  // Backward liveness from output ports through live gates.
  std::vector<bool> net_needed(nets, false);
  std::vector<NetId> work;
  auto need = [&](NetId n) {
    n = canon(n);
    if (res[n].constant) return;
    if (!net_needed[n]) {
      net_needed[n] = true;
      work.push_back(n);
    }
  };
  for (const auto& port : nl.outputs()) {
    for (NetId n : port.nets) need(n);
  }
  while (!work.empty()) {
    const NetId n = work.back();
    work.pop_back();
    const std::int64_t d = nl.driver(n);
    if (d < 0) continue;
    const Gate& g = nl.gates()[static_cast<std::size_t>(d)];
    for (NetId i : g.inputs) need(i);
  }

  // Emit the specialized netlist.
  Builder b(nl.name() + "_spec");
  std::vector<NetId> new_id(nets, kInvalidNet);
  for (const auto& port : nl.inputs()) {
    if (tied.count(port.name)) continue;
    const Bus bus = b.input(port.name, static_cast<int>(port.nets.size()));
    for (std::size_t i = 0; i < port.nets.size(); ++i) new_id[port.nets[i]] = bus[i];
  }
  auto resolve = [&](NetId n) -> NetId {
    n = canon(n);
    if (res[n].constant) return *res[n].constant ? b.const1() : b.const0();
    assert(new_id[n] != kInvalidNet);
    return new_id[n];
  };
  for (std::size_t gi = 0; gi < nl.gates().size(); ++gi) {
    if (!gate_live[gi]) continue;
    const Gate& g = nl.gates()[gi];
    const NetId out = canon(g.output);
    if (res[out].constant) continue;
    if (out != g.output) continue;  // folded into an alias elsewhere
    if (!net_needed[out] && !is_carry_macro(g.kind)) continue;
    if (is_carry_macro(g.kind) && !net_needed[out]) {
      // Dead macro: keep only if some later live gate reads it (covered
      // by net_needed); otherwise drop.
      continue;
    }
    Bus ins;
    for (NetId i : g.inputs) ins.push_back(resolve(i));
    // Rebuild through the builder's primitive API to retain hash-consing.
    NetId built = kInvalidNet;
    switch (g.kind) {
      case GateKind::kNot: built = b.not_(ins[0]); break;
      case GateKind::kAnd2: built = b.and_(ins[0], ins[1]); break;
      case GateKind::kOr2: built = b.or_(ins[0], ins[1]); break;
      case GateKind::kXor2: built = b.xor_(ins[0], ins[1]); break;
      case GateKind::kNand2: built = b.nand_(ins[0], ins[1]); break;
      case GateKind::kNor2: built = b.nor_(ins[0], ins[1]); break;
      case GateKind::kXnor2: built = b.xnor_(ins[0], ins[1]); break;
      case GateKind::kMux2: built = b.mux(ins[0], ins[1], ins[2]); break;
      case GateKind::kFaSum: built = b.full_adder(ins[0], ins[1], ins[2]).first; break;
      case GateKind::kFaCarry: built = b.full_adder(ins[0], ins[1], ins[2]).second; break;
      case GateKind::kBuf:
      case GateKind::kConst0:
      case GateKind::kConst1:
        break;
    }
    assert(built != kInvalidNet);
    new_id[g.output] = built;
  }
  for (const auto& port : nl.outputs()) {
    Bus bus;
    for (NetId n : port.nets) bus.push_back(resolve(n));
    b.output(port.name, bus);
  }
  return std::move(b).take();
}

}  // namespace gear::netlist
