// Gate-level IR primitives.
//
// The netlist is a DAG of single-output gates over boolean nets. Two gate
// kinds are special for synthesis: kFaSum / kFaCarry model the
// sum-and-carry pair of a full adder inside a dedicated carry chain
// (Virtex-6 CARRY4-style); the technology mapper treats them as hard
// macros instead of packing them into LUTs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gear::netlist {

using NetId = std::uint32_t;
inline constexpr NetId kInvalidNet = ~NetId{0};

enum class GateKind : std::uint8_t {
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd2,
  kOr2,
  kXor2,
  kNand2,
  kNor2,
  kXnor2,
  kMux2,    ///< inputs: {sel, d0, d1}; output = sel ? d1 : d0
  kFaSum,   ///< inputs: {a, b, cin}; output = a ^ b ^ cin
  kFaCarry, ///< inputs: {a, b, cin}; output = ab | cin(a^b)
};

const char* gate_kind_name(GateKind kind);

/// Number of inputs each kind expects (0 for constants).
int gate_kind_arity(GateKind kind);

/// True for the carry-chain macro kinds the LUT mapper must not absorb.
bool is_carry_macro(GateKind kind);

struct Gate {
  GateKind kind = GateKind::kConst0;
  std::vector<NetId> inputs;
  NetId output = kInvalidNet;
};

/// Evaluates one gate over concrete input bits.
bool eval_gate(GateKind kind, const std::vector<bool>& in);

}  // namespace gear::netlist
