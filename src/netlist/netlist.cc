#include "netlist/netlist.h"

#include <cassert>
#include <sstream>

namespace gear::netlist {

const char* gate_kind_name(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0: return "const0";
    case GateKind::kConst1: return "const1";
    case GateKind::kBuf: return "buf";
    case GateKind::kNot: return "not";
    case GateKind::kAnd2: return "and2";
    case GateKind::kOr2: return "or2";
    case GateKind::kXor2: return "xor2";
    case GateKind::kNand2: return "nand2";
    case GateKind::kNor2: return "nor2";
    case GateKind::kXnor2: return "xnor2";
    case GateKind::kMux2: return "mux2";
    case GateKind::kFaSum: return "fa_sum";
    case GateKind::kFaCarry: return "fa_carry";
  }
  return "?";
}

int gate_kind_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kConst0:
    case GateKind::kConst1:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
      return 1;
    case GateKind::kAnd2:
    case GateKind::kOr2:
    case GateKind::kXor2:
    case GateKind::kNand2:
    case GateKind::kNor2:
    case GateKind::kXnor2:
      return 2;
    case GateKind::kMux2:
    case GateKind::kFaSum:
    case GateKind::kFaCarry:
      return 3;
  }
  return 0;
}

bool is_carry_macro(GateKind kind) {
  return kind == GateKind::kFaSum || kind == GateKind::kFaCarry;
}

bool eval_gate(GateKind kind, const std::vector<bool>& in) {
  switch (kind) {
    case GateKind::kConst0: return false;
    case GateKind::kConst1: return true;
    case GateKind::kBuf: return in[0];
    case GateKind::kNot: return !in[0];
    case GateKind::kAnd2: return in[0] && in[1];
    case GateKind::kOr2: return in[0] || in[1];
    case GateKind::kXor2: return in[0] != in[1];
    case GateKind::kNand2: return !(in[0] && in[1]);
    case GateKind::kNor2: return !(in[0] || in[1]);
    case GateKind::kXnor2: return in[0] == in[1];
    case GateKind::kMux2: return in[0] ? in[2] : in[1];
    case GateKind::kFaSum: return (in[0] != in[1]) != in[2];
    case GateKind::kFaCarry: return (in[0] && in[1]) || (in[2] && (in[0] != in[1]));
  }
  return false;
}

NetId Netlist::new_net() {
  net_driver_.push_back(-1);
  return static_cast<NetId>(net_driver_.size() - 1);
}

NetId Netlist::add_gate(GateKind kind, std::vector<NetId> inputs) {
  assert(static_cast<int>(inputs.size()) == gate_kind_arity(kind));
  for (NetId in : inputs) {
    assert(in < net_driver_.size());
    (void)in;
  }
  const NetId out = new_net();
  net_driver_[out] = static_cast<std::int64_t>(gates_.size());
  gates_.push_back(Gate{kind, std::move(inputs), out});
  gate_region_.push_back(current_region_);
  return out;
}

void Netlist::set_region(const std::string& name) {
  for (std::size_t i = 0; i < region_names_.size(); ++i) {
    if (region_names_[i] == name) {
      current_region_ = static_cast<std::uint16_t>(i);
      return;
    }
  }
  region_names_.push_back(name);
  current_region_ = static_cast<std::uint16_t>(region_names_.size() - 1);
}

const std::string& Netlist::gate_region(std::size_t gi) const {
  return region_names_[gate_region_.at(gi)];
}

const std::string& Netlist::net_region(NetId net) const {
  const std::int64_t gi = driver(net);
  return gi < 0 ? region_names_.front()
                : gate_region(static_cast<std::size_t>(gi));
}

void Netlist::add_input(const std::string& name, std::vector<NetId> nets) {
  inputs_.push_back(Port{name, std::move(nets)});
}

void Netlist::add_output(const std::string& name, std::vector<NetId> nets) {
  outputs_.push_back(Port{name, std::move(nets)});
}

std::map<GateKind, std::size_t> Netlist::kind_histogram() const {
  std::map<GateKind, std::size_t> h;
  for (const auto& g : gates_) ++h[g.kind];
  return h;
}

std::string Netlist::validate() const {
  std::ostringstream err;
  std::vector<bool> is_input(net_driver_.size(), false);
  for (const auto& port : inputs_) {
    for (NetId n : port.nets) {
      if (n >= net_driver_.size()) {
        err << "input port " << port.name << " references missing net " << n << "\n";
        continue;
      }
      if (net_driver_[n] >= 0) {
        err << "input port " << port.name << " net " << n << " is gate-driven\n";
      }
      is_input[n] = true;
    }
  }
  for (std::size_t gi = 0; gi < gates_.size(); ++gi) {
    const auto& g = gates_[gi];
    if (static_cast<int>(g.inputs.size()) != gate_kind_arity(g.kind)) {
      err << "gate " << gi << " arity mismatch\n";
    }
    for (NetId in : g.inputs) {
      if (in >= net_driver_.size()) {
        err << "gate " << gi << " reads missing net " << in << "\n";
      } else if (net_driver_[in] < 0 && !is_input[in] &&
                 gate_kind_arity(g.kind) > 0) {
        err << "gate " << gi << " reads undriven net " << in << "\n";
      } else if (net_driver_[in] >= static_cast<std::int64_t>(gi)) {
        err << "gate " << gi << " reads a later gate's output (cycle)\n";
      }
    }
  }
  for (const auto& port : outputs_) {
    for (NetId n : port.nets) {
      if (n >= net_driver_.size()) {
        err << "output port " << port.name << " references missing net " << n << "\n";
      } else if (net_driver_[n] < 0 && !is_input[n]) {
        err << "output port " << port.name << " net " << n << " undriven\n";
      }
    }
  }
  return err.str();
}

std::map<std::string, core::BitVec> Netlist::simulate(
    const std::map<std::string, core::BitVec>& input_values) const {
  std::vector<bool> value(net_driver_.size(), false);
  for (const auto& port : inputs_) {
    auto it = input_values.find(port.name);
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      const bool v = (it != input_values.end() &&
                      static_cast<int>(i) < it->second.width())
                         ? it->second.bit(static_cast<int>(i))
                         : false;
      value[port.nets[i]] = v;
    }
  }
  std::vector<bool> in_bits;
  for (const auto& g : gates_) {
    in_bits.clear();
    for (NetId in : g.inputs) in_bits.push_back(value[in]);
    value[g.output] = eval_gate(g.kind, in_bits);
  }
  std::map<std::string, core::BitVec> out;
  for (const auto& port : outputs_) {
    core::BitVec v(static_cast<int>(port.nets.size()));
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      v.set_bit(static_cast<int>(i), value[port.nets[i]]);
    }
    out[port.name] = v;
  }
  return out;
}

std::uint64_t Netlist::simulate_add(std::uint64_t a, std::uint64_t b) const {
  int wa = 0, wb = 0;
  for (const auto& port : inputs_) {
    if (port.name == "a") wa = static_cast<int>(port.nets.size());
    if (port.name == "b") wb = static_cast<int>(port.nets.size());
  }
  std::map<std::string, core::BitVec> in;
  in["a"] = core::BitVec(wa, a);
  in["b"] = core::BitVec(wb, b);
  const auto out = simulate(in);
  const auto it = out.find("sum");
  assert(it != out.end());
  return it->second.to_u64();
}

}  // namespace gear::netlist
