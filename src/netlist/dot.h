// Graphviz DOT export of a netlist — for documentation figures and for
// eyeballing what the circuit generators and the specializer produce.
#pragma once

#include <string>

#include "netlist/netlist.h"

namespace gear::netlist {

/// DOT digraph: input/output ports as boxes, gates as ellipses labelled
/// with their kind, carry macros highlighted.
std::string to_dot(const Netlist& nl);

}  // namespace gear::netlist
