// Netlist container: nets, gates, ports, validation and simulation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/bitvec.h"
#include "netlist/gate.h"

namespace gear::netlist {

/// A named bus of nets (LSB first).
struct Port {
  std::string name;
  std::vector<NetId> nets;
};

/// Gate-level netlist. Nets are created before the gates that read them,
/// so the gate list is always in topological order and simulation is a
/// single forward pass.
class Netlist {
 public:
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Creates an undriven net (an input or a gate output to be bound).
  NetId new_net();

  /// Appends a gate; inputs must be existing nets, output a fresh net
  /// created by this call. Returns the output net.
  NetId add_gate(GateKind kind, std::vector<NetId> inputs);

  void add_input(const std::string& name, std::vector<NetId> nets);
  void add_output(const std::string& name, std::vector<NetId> nets);

  /// Sets the architectural region ("module") stamped on gates added from
  /// now on — e.g. "ripple" / "predict" / "detect" / "correct" in the GeAr
  /// generator. Pass "" (the default) for untagged gates. Region names are
  /// interned; the per-gate cost is one small integer.
  void set_region(const std::string& name);

  /// Region stamped on gate `gi` ("" when untagged). With hash-consing a
  /// structurally shared gate keeps the region of its first construction.
  const std::string& gate_region(std::size_t gi) const;

  /// Region of the gate driving `net`; "" for primary inputs.
  const std::string& net_region(NetId net) const;

  std::size_t net_count() const { return net_driver_.size(); }
  std::size_t gate_count() const { return gates_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Port>& inputs() const { return inputs_; }
  const std::vector<Port>& outputs() const { return outputs_; }

  /// Index of the gate driving `net`, or -1 for primary inputs.
  std::int64_t driver(NetId net) const { return net_driver_.at(net); }

  /// Gate-count breakdown by kind.
  std::map<GateKind, std::size_t> kind_histogram() const;

  /// Checks structural sanity: every gate input exists and is driven (or
  /// is a primary input), arities match, every output net is driven.
  /// Returns a diagnostic string, empty when OK.
  std::string validate() const;

  /// Simulates the netlist: values for each input port (by name) ->
  /// values for each output port. Missing inputs default to 0.
  std::map<std::string, core::BitVec> simulate(
      const std::map<std::string, core::BitVec>& input_values) const;

  /// Convenience two-operand simulation: sets ports "a" and "b", returns
  /// port "sum" as a u64. Widths must be <= 63.
  std::uint64_t simulate_add(std::uint64_t a, std::uint64_t b) const;

 private:
  std::string name_;
  std::vector<std::int64_t> net_driver_;  // -1 = primary input / undriven
  std::vector<Gate> gates_;
  std::vector<Port> inputs_;
  std::vector<Port> outputs_;
  std::vector<std::string> region_names_{std::string()};  // interned, [0] = ""
  std::vector<std::uint16_t> gate_region_;                // parallel to gates_
  std::uint16_t current_region_ = 0;
};

}  // namespace gear::netlist
