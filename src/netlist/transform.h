// Netlist specialization: constant propagation + dead-code elimination.
//
// Ties selected input ports to constant values, folds the constants
// through the logic (mux selects collapse, AND/OR absorb, etc.), and
// drops gates no longer reachable from an output. This is the netlist
// analogue of STA case analysis (Xilinx set_case_analysis): GDA's delay
// in the paper's tables reflects a *configured* adder, where the carry-
// select muxes are steered by static configuration bits and the unused
// ripple path does not appear on the critical path. Carry-macro gates are
// deliberately left unfolded so specialization never changes how ripple
// cores map onto carry chains.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "netlist/netlist.h"

namespace gear::netlist {

/// Returns a new netlist with each port in `tied` removed from the inputs
/// and its bits replaced by the given constant value (LSB first). All
/// other ports are preserved by name. Logic implied false/true is folded;
/// unreachable gates are dropped.
Netlist specialize(const Netlist& nl,
                   const std::map<std::string, std::uint64_t>& tied);

}  // namespace gear::netlist
