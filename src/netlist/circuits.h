// Gate-level circuit generators for every adder the paper evaluates.
//
// Each generator returns a Netlist with input buses "a", "b" and an output
// bus "sum" of N+1 bits; approximate adders with detection additionally
// expose an "err" bus. These circuits feed the synthesis substrate (LUT
// mapping + static timing) that reproduces the delay/area columns of
// Tables I, II and IV, and the netlist simulator cross-checks them against
// the functional models bit-for-bit.
#pragma once

#include "core/config.h"
#include "netlist/netlist.h"

namespace gear::netlist {

/// Options for GeAr circuit generation.
struct GearCircuitOptions {
  bool with_detection = true;   ///< emit per-sub-adder error flags
  bool with_correction = false; ///< emit the correction-path muxes/ORs
};

/// Exact ripple-carry adder (dedicated carry chain).
Netlist build_rca(int n);

/// Exact Kogge-Stone parallel-prefix adder (the "CLA" reference).
Netlist build_cla(int n);

/// GeAr adder; see GearCircuitOptions.
Netlist build_gear(const core::GeArConfig& cfg, const GearCircuitOptions& opt = {});

/// ACA-I with L-bit overlapping windows (one result bit per window).
Netlist build_aca1(int n, int l);

/// ACA-II with L-bit overlapping windows stepped by L/2.
Netlist build_aca2(int n, int l);

/// ETAII with `segment`-bit sum units and carry generators.
Netlist build_etaii(int n, int segment);

/// GDA with M_B-bit blocks and an M_C-bit hierarchical CLA prediction per
/// block, mux-selected against the rippled block carry (the mux select is
/// a primary input bus "cfg", one bit per block boundary: 0 = predicted
/// carry, 1 = rippled carry from the previous block).
Netlist build_gda(int n, int mb, int mc);

}  // namespace gear::netlist
