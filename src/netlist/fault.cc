#include "netlist/fault.h"

#include <algorithm>
#include <cassert>

namespace gear::netlist {

namespace {

/// Simulation core shared by good/faulty runs: `fault` may be null. A
/// stuck-at overrides the net for the whole pass; a transient inverts the
/// settled value at its driver, which in a single topological pass is
/// exactly the post-quiescence SEU (the flip propagates through the whole
/// downstream cone).
void eval_all(const Netlist& nl, const FaultSpec* fault,
              std::vector<bool>& value) {
  // A fault on a primary-input net is applied before gates read it; on a
  // gate output it overrides/inverts the gate (handled in the loop).
  if (fault && nl.driver(fault->net) < 0) {
    value[fault->net] =
        fault->is_stuck() ? fault->stuck_value() : !value[fault->net];
  }
  std::vector<bool> in_bits;
  for (const auto& g : nl.gates()) {
    in_bits.clear();
    for (NetId in : g.inputs) in_bits.push_back(value[in]);
    bool v = eval_gate(g.kind, in_bits);
    if (fault && g.output == fault->net) {
      v = fault->is_stuck() ? fault->stuck_value() : !v;
    }
    value[g.output] = v;
  }
}

void load_ports(const Netlist& nl, const PortVector& inputs,
                std::vector<bool>& value) {
  for (const auto& port : nl.inputs()) {
    auto it = inputs.find(port.name);
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      value[port.nets[i]] = it != inputs.end() &&
                            static_cast<int>(i) < it->second.width() &&
                            it->second.bit(static_cast<int>(i));
    }
  }
}

std::vector<bool> output_bits(const Netlist& nl, const std::vector<bool>& value) {
  std::vector<bool> out;
  for (const auto& port : nl.outputs()) {
    for (NetId n : port.nets) out.push_back(value[n]);
  }
  return out;
}

PortVector pair_vector(const Netlist& nl, std::uint64_t a, std::uint64_t b) {
  PortVector v;
  for (const auto& port : nl.inputs()) {
    const std::uint64_t bits = port.name == "a" ? a : port.name == "b" ? b : 0;
    v[port.name] = core::BitVec(static_cast<int>(port.nets.size()), bits);
  }
  return v;
}

}  // namespace

std::vector<StuckFault> enumerate_faults(const Netlist& nl) {
  std::vector<StuckFault> faults;
  for (const auto& g : nl.gates()) {
    // Constant drivers are not fault sites: a stuck-at equal to the
    // constant is the good circuit, and tying the opposite value is a
    // redundant site by construction.
    if (g.kind == GateKind::kConst0 || g.kind == GateKind::kConst1) continue;
    faults.push_back({g.output, false});
    faults.push_back({g.output, true});
  }
  return faults;
}

std::vector<FaultSpec> enumerate_transient_faults(const Netlist& nl) {
  std::vector<FaultSpec> faults;
  for (const auto& g : nl.gates()) {
    if (g.kind == GateKind::kConst0 || g.kind == GateKind::kConst1) continue;
    faults.push_back(FaultSpec::transient(g.output));
  }
  return faults;
}

std::map<std::string, core::BitVec> simulate_with_fault(
    const Netlist& nl, const FaultSpec& fault,
    const std::map<std::string, core::BitVec>& input_values) {
  std::vector<bool> value(nl.net_count(), false);
  load_ports(nl, input_values, value);
  eval_all(nl, &fault, value);
  std::map<std::string, core::BitVec> out;
  for (const auto& port : nl.outputs()) {
    core::BitVec v(static_cast<int>(port.nets.size()));
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      v.set_bit(static_cast<int>(i), value[port.nets[i]]);
    }
    out[port.name] = v;
  }
  return out;
}

bool fault_detected(const Netlist& nl, const FaultSpec& fault,
                    const std::vector<PortVector>& vectors) {
  std::vector<bool> good(nl.net_count(), false);
  std::vector<bool> bad(nl.net_count(), false);
  for (const auto& v : vectors) {
    load_ports(nl, v, good);
    eval_all(nl, nullptr, good);
    load_ports(nl, v, bad);
    eval_all(nl, &fault, bad);
    if (output_bits(nl, good) != output_bits(nl, bad)) return true;
  }
  return false;
}

bool fault_detected(
    const Netlist& nl, const FaultSpec& fault,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& vectors) {
  std::vector<PortVector> port_vectors;
  port_vectors.reserve(vectors.size());
  for (const auto& [a, b] : vectors) port_vectors.push_back(pair_vector(nl, a, b));
  return fault_detected(nl, fault, port_vectors);
}

std::vector<PortVector> random_port_vectors(const Netlist& nl, std::size_t count,
                                            stats::Rng& rng) {
  std::vector<PortVector> vectors(count);
  for (auto& v : vectors) {
    for (const auto& port : nl.inputs()) {
      const int width = static_cast<int>(port.nets.size());
      core::BitVec bits(width);
      // Draw in <= 63-bit chunks so arbitrarily wide control buses work.
      for (int lo = 0; lo < width; lo += 63) {
        const int chunk = std::min(63, width - lo);
        const std::uint64_t draw = rng.bits(chunk);
        for (int i = 0; i < chunk; ++i) bits.set_bit(lo + i, (draw >> i) & 1ULL);
      }
      v[port.name] = bits;
    }
  }
  return vectors;
}

FaultCoverage vector_coverage(const Netlist& nl,
                              const std::vector<PortVector>& vectors) {
  // Good-circuit responses are fault-independent: compute them once.
  std::vector<std::vector<bool>> good_outputs;
  good_outputs.reserve(vectors.size());
  std::vector<bool> value(nl.net_count(), false);
  for (const auto& v : vectors) {
    load_ports(nl, v, value);
    eval_all(nl, nullptr, value);
    good_outputs.push_back(output_bits(nl, value));
  }

  FaultCoverage cov;
  for (const StuckFault& fault : enumerate_faults(nl)) {
    ++cov.total;
    const FaultSpec spec = fault;
    bool caught = false;
    for (std::size_t i = 0; i < vectors.size() && !caught; ++i) {
      load_ports(nl, vectors[i], value);
      eval_all(nl, &spec, value);
      caught = output_bits(nl, value) != good_outputs[i];
    }
    if (caught) {
      ++cov.detected;
    } else {
      cov.undetected.push_back(fault);
    }
  }
  return cov;
}

FaultCoverage random_vector_coverage(const Netlist& nl, std::size_t count,
                                     stats::Rng& rng) {
  return vector_coverage(nl, random_port_vectors(nl, count, rng));
}

}  // namespace gear::netlist
