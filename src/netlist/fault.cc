#include "netlist/fault.h"

#include <cassert>

namespace gear::netlist {

namespace {

/// Simulation core shared by good/faulty runs: `fault` may be null.
void eval_all(const Netlist& nl, const StuckFault* fault,
              std::vector<bool>& value) {
  std::vector<bool> in_bits;
  for (const auto& g : nl.gates()) {
    in_bits.clear();
    for (NetId in : g.inputs) in_bits.push_back(value[in]);
    bool v = eval_gate(g.kind, in_bits);
    if (fault && g.output == fault->net) v = fault->stuck_value;
    value[g.output] = v;
  }
  // A fault on a primary-input net is applied before gates read it; on a
  // gate output it overrides the gate (handled above).
  if (fault && nl.driver(fault->net) < 0) value[fault->net] = fault->stuck_value;
}

void load_operands(const Netlist& nl, std::uint64_t a, std::uint64_t b,
                   std::vector<bool>& value) {
  for (const auto& port : nl.inputs()) {
    const std::uint64_t v = port.name == "a" ? a : port.name == "b" ? b : 0;
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      value[port.nets[i]] = (v >> i) & 1ULL;
    }
  }
}

std::vector<bool> output_bits(const Netlist& nl, const std::vector<bool>& value) {
  std::vector<bool> out;
  for (const auto& port : nl.outputs()) {
    for (NetId n : port.nets) out.push_back(value[n]);
  }
  return out;
}

}  // namespace

std::vector<StuckFault> enumerate_faults(const Netlist& nl) {
  std::vector<StuckFault> faults;
  for (const auto& g : nl.gates()) {
    // Constant drivers are not fault sites: a stuck-at equal to the
    // constant is the good circuit, and tying the opposite value is a
    // redundant site by construction.
    if (g.kind == GateKind::kConst0 || g.kind == GateKind::kConst1) continue;
    faults.push_back({g.output, false});
    faults.push_back({g.output, true});
  }
  return faults;
}

std::map<std::string, core::BitVec> simulate_with_fault(
    const Netlist& nl, const StuckFault& fault,
    const std::map<std::string, core::BitVec>& input_values) {
  std::vector<bool> value(nl.net_count(), false);
  for (const auto& port : nl.inputs()) {
    auto it = input_values.find(port.name);
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      value[port.nets[i]] = it != input_values.end() &&
                            static_cast<int>(i) < it->second.width() &&
                            it->second.bit(static_cast<int>(i));
    }
  }
  if (nl.driver(fault.net) < 0) value[fault.net] = fault.stuck_value;
  eval_all(nl, &fault, value);
  std::map<std::string, core::BitVec> out;
  for (const auto& port : nl.outputs()) {
    core::BitVec v(static_cast<int>(port.nets.size()));
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      v.set_bit(static_cast<int>(i), value[port.nets[i]]);
    }
    out[port.name] = v;
  }
  return out;
}

bool fault_detected(
    const Netlist& nl, const StuckFault& fault,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& vectors) {
  std::vector<bool> good(nl.net_count(), false);
  std::vector<bool> bad(nl.net_count(), false);
  for (const auto& [a, b] : vectors) {
    load_operands(nl, a, b, good);
    eval_all(nl, nullptr, good);
    load_operands(nl, a, b, bad);
    eval_all(nl, &fault, bad);
    if (output_bits(nl, good) != output_bits(nl, bad)) return true;
  }
  return false;
}

FaultCoverage random_vector_coverage(const Netlist& nl, std::size_t count,
                                     stats::Rng& rng) {
  int wa = 0;
  for (const auto& port : nl.inputs()) {
    if (port.name == "a") wa = static_cast<int>(port.nets.size());
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> vectors;
  vectors.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    vectors.emplace_back(rng.bits(wa), rng.bits(wa));
  }
  FaultCoverage cov;
  for (const StuckFault& fault : enumerate_faults(nl)) {
    ++cov.total;
    if (fault_detected(nl, fault, vectors)) {
      ++cov.detected;
    } else {
      cov.undetected.push_back(fault);
    }
  }
  return cov;
}

}  // namespace gear::netlist
