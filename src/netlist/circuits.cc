#include "netlist/circuits.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "netlist/builder.h"

namespace gear::netlist {

namespace {

std::string circuit_name(const std::string& base, int n) {
  std::ostringstream os;
  os << base << "_n" << n;
  return os.str();
}

}  // namespace

Netlist build_rca(int n) {
  Builder b(circuit_name("rca", n));
  const Bus a = b.input("a", n);
  const Bus bb = b.input("b", n);
  AdderBits add = b.ripple_adder(a, bb, b.const0());
  Bus sum = add.sum;
  sum.push_back(add.carry_out);
  b.output("sum", sum);
  return std::move(b).take();
}

Netlist build_cla(int n) {
  Builder b(circuit_name("cla", n));
  const Bus a = b.input("a", n);
  const Bus bb = b.input("b", n);
  AdderBits add = b.prefix_adder(a, bb, b.const0());
  Bus sum = add.sum;
  sum.push_back(add.carry_out);
  b.output("sum", sum);
  return std::move(b).take();
}

Netlist build_gear(const core::GeArConfig& cfg, const GearCircuitOptions& opt) {
  std::ostringstream name;
  name << "gear_n" << cfg.n() << "_r" << cfg.r() << "_p" << cfg.p();
  Builder b(name.str());
  const int n = cfg.n();
  const Bus a = b.input("a", n);
  const Bus bb = b.input("b", n);
  const int k = cfg.k();

  Bus sum(static_cast<std::size_t>(n) + 1, kInvalidNet);
  std::vector<NetId> carry_out(static_cast<std::size_t>(k));
  std::vector<NetId> all_prop(static_cast<std::size_t>(k), kInvalidNet);
  std::vector<NetId> detect(static_cast<std::size_t>(k));
  detect[0] = b.const0();  // sub-adder 0 is exact; its flag is tied low

  for (int j = 0; j < k; ++j) {
    const auto& s = cfg.sub(j);
    const int wlen = s.window_len();
    Bus wa = Builder::slice(a, s.win_lo, wlen);
    Bus wb = Builder::slice(bb, s.win_lo, wlen);

    if (opt.with_correction && j >= 1) {
      // Correction path: when this sub-adder's detect fires, replace the
      // prediction-window inputs with (a|b) and force the window LSB to 1
      // (paper Fig. 5/6). The detect driving the mux is computed from the
      // uncorrected first pass, so this is the single-correction stage the
      // sequential design iterates.
      const int plen = s.prediction_len();
      Bus pa = Builder::slice(wa, 0, plen);
      Bus pb = Builder::slice(wb, 0, plen);
      b.region("detect");
      const NetId prop_first = b.and_tree(b.xor_bus(pa, pb));
      // First-pass carry of the previous window (already built, since j-1
      // precedes j and carry_out[j-1] is final for the first pass).
      const NetId det = b.and_(prop_first, carry_out[static_cast<std::size_t>(j - 1)]);
      b.region("correct");
      Bus merged = b.or_bus(pa, pb);
      merged[0] = b.const1();
      Bus ca = b.mux_bus(det, pa, merged);
      Bus cb = b.mux_bus(det, pb, merged);
      b.region("");
      std::copy(ca.begin(), ca.end(), wa.begin());
      std::copy(cb.begin(), cb.end(), wb.begin());
    }

    // Prediction bits only feed the carry chain (their sum XORs are
    // discarded in the paper's Fig. 3 and omitted from the hardware);
    // result bits get full adders.
    const int rel = s.res_lo - s.win_lo;
    b.region(j > 0 ? "predict" : "ripple");
    NetId carry = b.carry_generator(Builder::slice(wa, 0, rel),
                                    Builder::slice(wb, 0, rel), b.const0());
    b.region("ripple");
    for (int i = rel; i < wlen; ++i) {
      auto [sum_bit, next_carry] = b.full_adder(wa[static_cast<std::size_t>(i)],
                                                wb[static_cast<std::size_t>(i)], carry);
      sum[static_cast<std::size_t>(s.win_lo + i)] = sum_bit;
      carry = next_carry;
    }
    b.region("");
    carry_out[static_cast<std::size_t>(j)] = carry;
    if (j >= 1 && opt.with_detection) {
      const int plen = s.prediction_len();
      Bus pa = Builder::slice(a, s.win_lo, plen);
      Bus pb = Builder::slice(bb, s.win_lo, plen);
      b.region("detect");
      all_prop[static_cast<std::size_t>(j)] = b.and_tree(b.xor_bus(pa, pb));
      detect[static_cast<std::size_t>(j)] =
          b.and_(all_prop[static_cast<std::size_t>(j)],
                 carry_out[static_cast<std::size_t>(j - 1)]);
      b.region("");
    }
  }
  sum[static_cast<std::size_t>(n)] = carry_out[static_cast<std::size_t>(k - 1)];
  b.output("sum", sum);
  if (opt.with_detection) b.output("err", detect);
  return std::move(b).take();
}

Netlist build_aca1(int n, int l) {
  assert(l >= 2 && l <= n);
  std::ostringstream name;
  name << "aca1_n" << n << "_l" << l;
  Builder b(name.str());
  const Bus a = b.input("a", n);
  const Bus bb = b.input("b", n);

  Bus sum(static_cast<std::size_t>(n) + 1, kInvalidNet);
  // First window supplies the low l-1 bits.
  {
    AdderBits w0 = b.ripple_adder(Builder::slice(a, 0, l), Builder::slice(bb, 0, l),
                                  b.const0());
    for (int i = 0; i < l - 1; ++i) sum[static_cast<std::size_t>(i)] = w0.sum[static_cast<std::size_t>(i)];
  }
  // Bit i >= l-1: top bit of the window ending at i. The carry into the
  // top position is a carry generator over the window's low l-1 bits.
  for (int i = l - 1; i < n; ++i) {
    const int lo = i - l + 1;
    const NetId cin = b.carry_generator(Builder::slice(a, lo, l - 1),
                                        Builder::slice(bb, lo, l - 1), b.const0());
    auto [s, c] = b.full_adder(a[static_cast<std::size_t>(i)],
                               bb[static_cast<std::size_t>(i)], cin);
    sum[static_cast<std::size_t>(i)] = s;
    if (i == n - 1) sum[static_cast<std::size_t>(n)] = c;
  }
  b.output("sum", sum);
  return std::move(b).take();
}

Netlist build_aca2(int n, int l) {
  assert(l >= 2 && l % 2 == 0 && l <= n && n % (l / 2) == 0);
  std::ostringstream name;
  name << "aca2_n" << n << "_l" << l;
  Builder b(name.str());
  const Bus a = b.input("a", n);
  const Bus bb = b.input("b", n);
  const int r = l / 2;

  Bus sum(static_cast<std::size_t>(n) + 1, kInvalidNet);
  NetId top_carry = kInvalidNet;
  {
    AdderBits w0 = b.ripple_adder(Builder::slice(a, 0, l), Builder::slice(bb, 0, l),
                                  b.const0());
    for (int i = 0; i < l; ++i) sum[static_cast<std::size_t>(i)] = w0.sum[static_cast<std::size_t>(i)];
    top_carry = w0.carry_out;
  }
  for (int res_lo = l; res_lo < n; res_lo += r) {
    const int lo = res_lo - r;
    const int wlen = std::min(l, n - lo);
    // Low r bits of each window only predict the carry; their sum bits
    // are discarded and therefore not built.
    NetId carry = b.carry_generator(Builder::slice(a, lo, r),
                                    Builder::slice(bb, lo, r), b.const0());
    for (int i = r; i < wlen; ++i) {
      auto [sum_bit, next] =
          b.full_adder(a[static_cast<std::size_t>(lo + i)],
                       bb[static_cast<std::size_t>(lo + i)], carry);
      sum[static_cast<std::size_t>(lo + i)] = sum_bit;
      carry = next;
    }
    top_carry = carry;
  }
  sum[static_cast<std::size_t>(n)] = top_carry;
  b.output("sum", sum);
  return std::move(b).take();
}

Netlist build_etaii(int n, int segment) {
  assert(segment >= 1 && n % segment == 0);
  std::ostringstream name;
  name << "etaii_n" << n << "_x" << segment;
  Builder b(name.str());
  const Bus a = b.input("a", n);
  const Bus bb = b.input("b", n);

  Bus sum(static_cast<std::size_t>(n) + 1, kInvalidNet);
  NetId top_carry = kInvalidNet;
  for (int lo = 0; lo < n; lo += segment) {
    NetId cin = b.const0();
    if (lo > 0) {
      cin = b.carry_generator(Builder::slice(a, lo - segment, segment),
                              Builder::slice(bb, lo - segment, segment),
                              b.const0());
    }
    AdderBits w = b.ripple_adder(Builder::slice(a, lo, segment),
                                 Builder::slice(bb, lo, segment), cin);
    for (int i = 0; i < segment; ++i) {
      sum[static_cast<std::size_t>(lo + i)] = w.sum[static_cast<std::size_t>(i)];
    }
    top_carry = w.carry_out;
  }
  sum[static_cast<std::size_t>(n)] = top_carry;
  b.output("sum", sum);
  return std::move(b).take();
}

Netlist build_gda(int n, int mb, int mc) {
  assert(mb >= 1 && n % mb == 0 && mc >= 1 && mc % mb == 0 && mc < n);
  std::ostringstream name;
  name << "gda_n" << n << "_mb" << mb << "_mc" << mc;
  Builder b(name.str());
  const Bus a = b.input("a", n);
  const Bus bb = b.input("b", n);
  const int blocks = n / mb;
  // One select bit per internal block boundary: 0 = predicted carry,
  // 1 = previous block's rippled carry (graceful degradation to exact).
  const Bus cfg_sel = b.input("cfg", blocks - 1);

  Bus sum(static_cast<std::size_t>(n) + 1, kInvalidNet);
  NetId prev_carry = kInvalidNet;
  NetId top_carry = kInvalidNet;
  for (int blk = 0; blk < blocks; ++blk) {
    const int lo = blk * mb;
    NetId cin = b.const0();
    if (blk > 0) {
      const int pred = std::min(mc, lo);
      const NetId predicted = b.cla_group_generate(
          Builder::slice(a, lo - pred, pred), Builder::slice(bb, lo - pred, pred));
      cin = b.mux(cfg_sel[static_cast<std::size_t>(blk - 1)], predicted, prev_carry);
    }
    AdderBits w = b.ripple_adder(Builder::slice(a, lo, mb),
                                 Builder::slice(bb, lo, mb), cin);
    for (int i = 0; i < mb; ++i) {
      sum[static_cast<std::size_t>(lo + i)] = w.sum[static_cast<std::size_t>(i)];
    }
    prev_carry = w.carry_out;
    top_carry = w.carry_out;
  }
  sum[static_cast<std::size_t>(n)] = top_carry;
  b.output("sum", sum);
  return std::move(b).take();
}

}  // namespace gear::netlist
