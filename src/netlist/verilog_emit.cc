#include "netlist/verilog_emit.h"

#include <sstream>
#include <vector>

namespace gear::netlist {

namespace {

std::string net_ref(NetId id) {
  std::ostringstream os;
  os << "n" << id;
  return os.str();
}

std::string gate_expr(const Gate& g) {
  const auto in = [&](std::size_t i) { return net_ref(g.inputs[i]); };
  std::ostringstream os;
  switch (g.kind) {
    case GateKind::kConst0: os << "1'b0"; break;
    case GateKind::kConst1: os << "1'b1"; break;
    case GateKind::kBuf: os << in(0); break;
    case GateKind::kNot: os << "~" << in(0); break;
    case GateKind::kAnd2: os << in(0) << " & " << in(1); break;
    case GateKind::kOr2: os << in(0) << " | " << in(1); break;
    case GateKind::kXor2: os << in(0) << " ^ " << in(1); break;
    case GateKind::kNand2: os << "~(" << in(0) << " & " << in(1) << ")"; break;
    case GateKind::kNor2: os << "~(" << in(0) << " | " << in(1) << ")"; break;
    case GateKind::kXnor2: os << "~(" << in(0) << " ^ " << in(1) << ")"; break;
    case GateKind::kMux2:
      os << in(0) << " ? " << in(2) << " : " << in(1);
      break;
    case GateKind::kFaSum:
      os << in(0) << " ^ " << in(1) << " ^ " << in(2);
      break;
    case GateKind::kFaCarry:
      os << "(" << in(0) << " & " << in(1) << ") | (" << in(2) << " & ("
         << in(0) << " ^ " << in(1) << "))";
      break;
  }
  return os.str();
}

}  // namespace

std::string to_verilog(const Netlist& nl) {
  std::ostringstream os;
  os << "// Structural netlist, auto-generated.\n";
  os << "module " << nl.name() << " (";
  bool first = true;
  for (const auto& p : nl.inputs()) {
    os << (first ? "" : ", ") << p.name;
    first = false;
  }
  for (const auto& p : nl.outputs()) {
    os << (first ? "" : ", ") << p.name;
    first = false;
  }
  os << ");\n";
  for (const auto& p : nl.inputs()) {
    os << "  input  [" << (p.nets.size() - 1) << ":0] " << p.name << ";\n";
  }
  for (const auto& p : nl.outputs()) {
    os << "  output [" << (p.nets.size() - 1) << ":0] " << p.name << ";\n";
  }

  // Internal wires: one per gate-driven net.
  for (const auto& g : nl.gates()) {
    os << "  wire " << net_ref(g.output) << ";\n";
  }
  // Bind input port bits to their nets.
  for (const auto& p : nl.inputs()) {
    for (std::size_t i = 0; i < p.nets.size(); ++i) {
      os << "  wire " << net_ref(p.nets[i]) << " = " << p.name << "[" << i
         << "];\n";
    }
  }
  for (const auto& g : nl.gates()) {
    os << "  assign " << net_ref(g.output) << " = " << gate_expr(g) << ";\n";
  }
  for (const auto& p : nl.outputs()) {
    for (std::size_t i = 0; i < p.nets.size(); ++i) {
      os << "  assign " << p.name << "[" << i << "] = " << net_ref(p.nets[i])
         << ";\n";
    }
  }
  os << "endmodule\n";
  return os.str();
}

}  // namespace gear::netlist
