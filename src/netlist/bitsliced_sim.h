// Bitsliced (64-lane) gate-level functional simulation.
//
// One 64-bit word per net: bit l is lane l's value, so each gate evaluates
// 64 independent input vectors with a handful of bitwise ops. Semantics
// per lane are exactly Netlist::simulate / simulate_with_fault (the
// single topological forward pass; faults applied at the driven net),
// differentially fuzz-tested in test_bitsliced.cc. The fault-campaign
// runner uses this to evaluate 64 (fault, vector) injections per pass —
// each lane may carry its *own* fault site, since a fault is just a
// per-net lane mask applied when that net's value is produced.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/fault.h"
#include "netlist/netlist.h"

namespace gear::netlist {

class BitslicedNetSim {
 public:
  static constexpr int kLanes = 64;

  explicit BitslicedNetSim(const Netlist& nl);

  const Netlist& netlist() const { return nl_; }

  /// Zeroes all input lanes and removes all faults.
  void clear();

  /// Loads lane `l` of every input port from `inputs` (missing ports and
  /// bits beyond a value's width read 0, as in Netlist::simulate).
  void load_lane(int lane, const PortVector& inputs);

  /// Arms `fault` on lane `lane` for the next faulty run; lanes may carry
  /// distinct faults. At most one fault per lane (campaign model).
  void set_fault(int lane, const FaultSpec& fault);

  /// Topological forward pass over all gates. `faulty` applies the armed
  /// per-lane fault masks at each net's driver (primary inputs before any
  /// gate reads them); the result lands in the corresponding value buffer
  /// so one load can serve a good and a faulty pass back to back.
  void run(bool faulty);

  /// Packed value of net `n` after run(faulty=false) / run(faulty=true).
  std::uint64_t good_word(NetId n) const { return good_[n]; }
  std::uint64_t faulty_word(NetId n) const { return faulty_vals_[n]; }

  /// Lanes (bit mask) where `port`'s value differs between the good and
  /// faulty runs.
  std::uint64_t port_diff_lanes(const Port& port) const;

  /// Lane `l` of `port` from the good/faulty run, as a low-64-bit value
  /// (BitVec::to_u64 semantics: bits beyond 64 truncated).
  std::uint64_t good_lane_u64(const Port& port, int lane) const;
  std::uint64_t faulty_lane_u64(const Port& port, int lane) const;

  /// Lane `l` of every output port from the good run, as BitVecs — the
  /// exact shape Netlist::simulate returns (for differential tests).
  std::map<std::string, core::BitVec> good_outputs(int lane) const;

 private:
  /// Flattened gate for the hot loop (no per-gate vector indirection).
  struct FlatGate {
    GateKind kind;
    NetId in[3];
    NetId out;
  };

  void apply_fault_masks(std::vector<std::uint64_t>& v, NetId n) const;
  void forward(std::vector<std::uint64_t>& v, bool faulty) const;
  static std::uint64_t lane_u64(const std::vector<std::uint64_t>& v,
                                const Port& port, int lane);

  const Netlist& nl_;
  std::vector<FlatGate> gates_;
  std::vector<std::uint64_t> inputs_;       // input-net lane words
  std::vector<std::uint64_t> good_;         // per-net values, good pass
  std::vector<std::uint64_t> faulty_vals_;  // per-net values, faulty pass
  // Per-net fault lane masks (dense; reset via touched_ between blocks).
  std::vector<std::uint64_t> invert_, stuck0_, stuck1_;
  std::vector<NetId> touched_;
};

}  // namespace gear::netlist
