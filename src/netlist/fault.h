// Stuck-at fault injection and fault simulation.
//
// Testability substrate for the generated circuits: enumerate single
// stuck-at-0/1 faults on gate outputs, simulate the faulty circuit, and
// measure the coverage of a vector set. Used to validate that GeAr's
// error-detection flag network is itself testable, and that the
// self-checking testbenches the RTL generator emits exercise the logic.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bitvec.h"
#include "netlist/netlist.h"
#include "stats/rng.h"

namespace gear::netlist {

struct StuckFault {
  NetId net = kInvalidNet;
  bool stuck_value = false;

  bool operator==(const StuckFault&) const = default;
};

/// All single stuck-at faults on gate-driven nets (two per net).
std::vector<StuckFault> enumerate_faults(const Netlist& nl);

/// Simulates the netlist with `fault` overriding its net. Same semantics
/// as Netlist::simulate otherwise.
std::map<std::string, core::BitVec> simulate_with_fault(
    const Netlist& nl, const StuckFault& fault,
    const std::map<std::string, core::BitVec>& input_values);

/// Whether `vectors` (pairs applied to ports "a"/"b") distinguish the
/// faulty circuit from the good one on any output.
bool fault_detected(const Netlist& nl, const StuckFault& fault,
                    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& vectors);

struct FaultCoverage {
  std::size_t total = 0;
  std::size_t detected = 0;
  double coverage() const {
    return total ? static_cast<double>(detected) / static_cast<double>(total) : 1.0;
  }
  std::vector<StuckFault> undetected;
};

/// Coverage of `count` random vector pairs over all single stuck-at
/// faults of a two-operand circuit.
FaultCoverage random_vector_coverage(const Netlist& nl, std::size_t count,
                                     stats::Rng& rng);

}  // namespace gear::netlist
