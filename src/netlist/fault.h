// Fault injection and fault simulation: permanent stuck-at faults and
// transient single-event upsets (SEUs).
//
// Testability substrate for the generated circuits: enumerate fault sites
// on gate-driven nets, simulate the faulty circuit, and measure the
// coverage of a vector set. Used to validate that GeAr's error-detection
// flag network is itself testable, and — via the fault-campaign runner in
// analysis/vulnerability.h — to quantify how gracefully each adder
// degrades when the datapath or the detection logic itself is upset.
//
// Fault semantics:
//  * Stuck-at: the net is held at a constant value for the whole run
//    (classic manufacturing-defect model).
//  * Transient: the settled value of the net is inverted once and the flip
//    propagates through the downstream cone (an SEU striking after the
//    inputs have quiesced). In the functional simulator this is exact; the
//    event simulator additionally supports flips at an arbitrary time
//    during settling, where in-flight reconvergence can overwrite — i.e.
//    electrically mask — the upset (see EventSimulator::step_with_fault).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/bitvec.h"
#include "netlist/netlist.h"
#include "stats/rng.h"

namespace gear::netlist {

enum class FaultKind : std::uint8_t {
  kStuckAt0,
  kStuckAt1,
  kTransient,  ///< one-shot bit flip of the settled net value
};

/// One fault site: a kind applied to a net. `time` is only meaningful for
/// transient faults under the event simulator (flip instant in the same
/// units as GateDelays); the functional simulator ignores it and models
/// the post-quiescence flip.
struct FaultSpec {
  FaultKind kind = FaultKind::kStuckAt0;
  NetId net = kInvalidNet;
  double time = 0.0;

  static FaultSpec stuck_at(NetId net, bool value) {
    return {value ? FaultKind::kStuckAt1 : FaultKind::kStuckAt0, net, 0.0};
  }
  static FaultSpec transient(NetId net, double time = 0.0) {
    return {FaultKind::kTransient, net, time};
  }

  bool is_stuck() const { return kind != FaultKind::kTransient; }
  bool stuck_value() const { return kind == FaultKind::kStuckAt1; }

  bool operator==(const FaultSpec&) const = default;
};

/// Legacy stuck-at description; kept for call sites that only deal in
/// stuck-at testability. Converts implicitly to FaultSpec.
struct StuckFault {
  NetId net = kInvalidNet;
  bool stuck_value = false;

  operator FaultSpec() const { return FaultSpec::stuck_at(net, stuck_value); }
  bool operator==(const StuckFault&) const = default;
};

/// All single stuck-at faults on gate-driven nets (two per net).
std::vector<StuckFault> enumerate_faults(const Netlist& nl);

/// All transient (SEU) fault sites: one per non-constant gate-driven net.
/// Constant drivers are excluded for the same reason as in
/// enumerate_faults — a flip there is a stuck-at, not a transient site in
/// any meaningful sense for a combinational pass.
std::vector<FaultSpec> enumerate_transient_faults(const Netlist& nl);

/// Simulates the netlist with `fault` overriding (stuck-at) or inverting
/// (transient) its net. Same semantics as Netlist::simulate otherwise.
std::map<std::string, core::BitVec> simulate_with_fault(
    const Netlist& nl, const FaultSpec& fault,
    const std::map<std::string, core::BitVec>& input_values);

/// A full input-port assignment for one test vector.
using PortVector = std::map<std::string, core::BitVec>;

/// Whether `vectors` distinguish the faulty circuit from the good one on
/// any output. Each vector assigns every input port by name, so circuits
/// with mask/control inputs (e.g. GDA's "cfg" bus) are coverable too.
bool fault_detected(const Netlist& nl, const FaultSpec& fault,
                    const std::vector<PortVector>& vectors);

/// Two-operand convenience: pairs applied to ports "a"/"b", all other
/// input ports held at 0.
bool fault_detected(const Netlist& nl, const FaultSpec& fault,
                    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& vectors);

/// Draws `count` vectors assigning uniform random bits to *every* input
/// port of the netlist, in port declaration order.
std::vector<PortVector> random_port_vectors(const Netlist& nl, std::size_t count,
                                            stats::Rng& rng);

struct FaultCoverage {
  std::size_t total = 0;
  std::size_t detected = 0;
  double coverage() const {
    return total ? static_cast<double>(detected) / static_cast<double>(total) : 1.0;
  }
  std::vector<StuckFault> undetected;
};

/// Coverage of an explicit vector set over all single stuck-at faults.
FaultCoverage vector_coverage(const Netlist& nl,
                              const std::vector<PortVector>& vectors);

/// Coverage of `count` random vectors (random_port_vectors) over all
/// single stuck-at faults. Every input port is randomized, so
/// detection/correction circuits with control inputs are exercised.
FaultCoverage random_vector_coverage(const Netlist& nl, std::size_t count,
                                     stats::Rng& rng);

}  // namespace gear::netlist
