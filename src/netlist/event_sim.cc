#include "netlist/event_sim.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <utility>

namespace gear::netlist {

EventSimulator::EventSimulator(Netlist nl, GateDelays delays)
    : nl_(std::move(nl)), delays_(delays) {
  fanout_gates_.resize(nl_.net_count());
  for (std::size_t gi = 0; gi < nl_.gates().size(); ++gi) {
    for (NetId in : nl_.gates()[gi].inputs) {
      fanout_gates_[in].push_back(gi);
    }
  }
}

void EventSimulator::settle(const std::map<std::string, core::BitVec>& inputs,
                            std::vector<bool>& value, const FaultSpec* fault) const {
  for (const auto& port : nl_.inputs()) {
    auto it = inputs.find(port.name);
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      value[port.nets[i]] = it != inputs.end() &&
                            static_cast<int>(i) < it->second.width() &&
                            it->second.bit(static_cast<int>(i));
    }
  }
  // Only permanent (stuck-at) faults shape a settled state; a transient
  // strike is an event, injected by step_impl.
  if (fault && fault->is_stuck() && nl_.driver(fault->net) < 0) {
    value[fault->net] = fault->stuck_value();
  }
  std::vector<bool> in_bits;
  for (const auto& g : nl_.gates()) {
    in_bits.clear();
    for (NetId in : g.inputs) in_bits.push_back(value[in]);
    bool v = eval_gate(g.kind, in_bits);
    if (fault && fault->is_stuck() && g.output == fault->net) {
      v = fault->stuck_value();
    }
    value[g.output] = v;
  }
}

EventSimResult EventSimulator::step(const std::map<std::string, core::BitVec>& from,
                                    const std::map<std::string, core::BitVec>& to) {
  return step_impl(from, to, nullptr);
}

EventSimResult EventSimulator::step_with_fault(
    const std::map<std::string, core::BitVec>& from,
    const std::map<std::string, core::BitVec>& to, const FaultSpec& fault) {
  return step_impl(from, to, &fault);
}

EventSimResult EventSimulator::step_impl(
    const std::map<std::string, core::BitVec>& from,
    const std::map<std::string, core::BitVec>& to, const FaultSpec* fault) {
  const std::size_t nets = nl_.net_count();
  const bool stuck = fault && fault->is_stuck();
  std::vector<bool> value(nets, false);
  settle(from, value, fault);

  // Fault-free final values: the reference for the minimum (hazard-free)
  // transition count and for fault-corruption detection.
  std::vector<bool> final_value(nets, false);
  settle(to, final_value);
  std::uint64_t min_transitions = 0;
  for (std::size_t n = 0; n < nets; ++n) {
    if (value[n] != final_value[n]) ++min_transitions;
  }

  // Event queue of (time, gate) evaluations seeded by changed inputs. The
  // sentinel index kFaultEvent marks the transient strike.
  constexpr std::size_t kFaultEvent = static_cast<std::size_t>(-1);
  using Event = std::pair<double, std::size_t>;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  auto schedule_fanout = [&](NetId net, double t) {
    for (std::size_t gi : fanout_gates_[net]) {
      queue.emplace(t + delays_.of(nl_.gates()[gi].kind), gi);
    }
  };
  if (fault && !fault->is_stuck()) {
    queue.emplace(std::max(0.0, fault->time), kFaultEvent);
  }

  EventSimResult result;
  for (const auto& port : nl_.inputs()) {
    auto it = to.find(port.name);
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      bool nv = it != to.end() && static_cast<int>(i) < it->second.width() &&
                it->second.bit(static_cast<int>(i));
      if (stuck && port.nets[i] == fault->net) nv = fault->stuck_value();
      if (value[port.nets[i]] != nv) {
        value[port.nets[i]] = nv;
        ++result.transitions;
        schedule_fanout(port.nets[i], 0.0);
      }
    }
  }

  // Two-phase per timestamp: evaluate every gate scheduled at time t
  // against the pre-t values, then commit the changes and schedule their
  // fan-out — otherwise same-time cascades would propagate with zero
  // delay through the batch. A transient strike lands after the regular
  // commits of its timestamp, flipping whatever the net then holds.
  std::vector<bool> in_bits;
  std::vector<std::size_t> batch;
  std::vector<std::pair<std::size_t, bool>> commits;  // gate -> new value
  while (!queue.empty()) {
    const double t = queue.top().first;
    batch.clear();
    bool strike = false;
    while (!queue.empty() && queue.top().first == t) {
      if (queue.top().second == kFaultEvent) {
        strike = true;
      } else {
        batch.push_back(queue.top().second);
      }
      queue.pop();
    }
    std::sort(batch.begin(), batch.end());
    batch.erase(std::unique(batch.begin(), batch.end()), batch.end());

    commits.clear();
    for (std::size_t gi : batch) {
      const Gate& g = nl_.gates()[gi];
      in_bits.clear();
      for (NetId in : g.inputs) in_bits.push_back(value[in]);
      bool nv = eval_gate(g.kind, in_bits);
      if (stuck && g.output == fault->net) nv = fault->stuck_value();
      if (nv != value[g.output]) commits.emplace_back(gi, nv);
    }
    for (const auto& [gi, nv] : commits) {
      const Gate& g = nl_.gates()[gi];
      value[g.output] = nv;
      ++result.transitions;
      result.settle_time = std::max(result.settle_time, t);
      schedule_fanout(g.output, t);
    }
    if (strike) {
      value[fault->net] = !value[fault->net];
      ++result.transitions;
      result.settle_time = std::max(result.settle_time, t);
      schedule_fanout(fault->net, t);
    }
  }

  assert(fault != nullptr || value == final_value);
  result.glitches = result.transitions > min_transitions
                        ? result.transitions - min_transitions
                        : 0;
  for (const auto& port : nl_.outputs()) {
    core::BitVec v(static_cast<int>(port.nets.size()));
    for (std::size_t i = 0; i < port.nets.size(); ++i) {
      v.set_bit(static_cast<int>(i), value[port.nets[i]]);
      if (value[port.nets[i]] != final_value[port.nets[i]]) result.corrupted = true;
    }
    result.outputs[port.name] = v;
  }
  return result;
}

EventSimResult EventSimulator::step_add(std::uint64_t a0, std::uint64_t b0,
                                        std::uint64_t a1, std::uint64_t b1) {
  int wa = 1, wb = 1;
  for (const auto& port : nl_.inputs()) {
    if (port.name == "a") wa = static_cast<int>(port.nets.size());
    if (port.name == "b") wb = static_cast<int>(port.nets.size());
  }
  return step({{"a", core::BitVec(wa, a0)}, {"b", core::BitVec(wb, b0)}},
              {{"a", core::BitVec(wa, a1)}, {"b", core::BitVec(wb, b1)}});
}

EventSimulator::Profile EventSimulator::profile(std::uint64_t pairs,
                                                stats::Rng& rng) {
  int wa = 1;
  for (const auto& port : nl_.inputs()) {
    if (port.name == "a") wa = static_cast<int>(port.nets.size());
  }
  Profile p;
  std::uint64_t a0 = rng.bits(wa), b0 = rng.bits(wa);
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const std::uint64_t a1 = rng.bits(wa);
    const std::uint64_t b1 = rng.bits(wa);
    const EventSimResult r = step_add(a0, b0, a1, b1);
    p.mean_settle += r.settle_time;
    p.max_settle = std::max(p.max_settle, r.settle_time);
    p.mean_transitions += static_cast<double>(r.transitions);
    p.mean_glitches += static_cast<double>(r.glitches);
    a0 = a1;
    b0 = b1;
  }
  const auto n = static_cast<double>(pairs);
  p.mean_settle /= n;
  p.mean_transitions /= n;
  p.mean_glitches /= n;
  return p;
}

}  // namespace gear::netlist
