# Empty compiler generated dependencies file for bench_ablation_correction.
# This may be replaced when dependencies are built.
