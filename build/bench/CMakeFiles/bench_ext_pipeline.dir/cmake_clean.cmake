file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pipeline.dir/bench_ext_pipeline.cc.o"
  "CMakeFiles/bench_ext_pipeline.dir/bench_ext_pipeline.cc.o.d"
  "bench_ext_pipeline"
  "bench_ext_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
