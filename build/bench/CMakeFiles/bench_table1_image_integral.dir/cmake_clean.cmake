file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_image_integral.dir/bench_table1_image_integral.cc.o"
  "CMakeFiles/bench_table1_image_integral.dir/bench_table1_image_integral.cc.o.d"
  "bench_table1_image_integral"
  "bench_table1_image_integral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_image_integral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
