# Empty dependencies file for bench_table1_image_integral.
# This may be replaced when dependencies are built.
