file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_gda_vs_gear.dir/bench_table2_gda_vs_gear.cc.o"
  "CMakeFiles/bench_table2_gda_vs_gear.dir/bench_table2_gda_vs_gear.cc.o.d"
  "bench_table2_gda_vs_gear"
  "bench_table2_gda_vs_gear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_gda_vs_gear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
