# Empty compiler generated dependencies file for bench_table2_gda_vs_gear.
# This may be replaced when dependencies are built.
