# Empty compiler generated dependencies file for bench_fig7_accuracy_config.
# This may be replaced when dependencies are built.
