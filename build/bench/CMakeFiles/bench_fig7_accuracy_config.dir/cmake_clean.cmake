file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_accuracy_config.dir/bench_fig7_accuracy_config.cc.o"
  "CMakeFiles/bench_fig7_accuracy_config.dir/bench_fig7_accuracy_config.cc.o.d"
  "bench_fig7_accuracy_config"
  "bench_fig7_accuracy_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_accuracy_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
