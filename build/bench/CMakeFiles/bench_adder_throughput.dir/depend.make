# Empty dependencies file for bench_adder_throughput.
# This may be replaced when dependencies are built.
