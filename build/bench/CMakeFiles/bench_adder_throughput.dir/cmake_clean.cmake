file(REMOVE_RECURSE
  "CMakeFiles/bench_adder_throughput.dir/bench_adder_throughput.cc.o"
  "CMakeFiles/bench_adder_throughput.dir/bench_adder_throughput.cc.o.d"
  "bench_adder_throughput"
  "bench_adder_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adder_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
