file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dynamic.dir/bench_ext_dynamic.cc.o"
  "CMakeFiles/bench_ext_dynamic.dir/bench_ext_dynamic.cc.o.d"
  "bench_ext_dynamic"
  "bench_ext_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
