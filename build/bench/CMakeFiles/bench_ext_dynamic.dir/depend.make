# Empty dependencies file for bench_ext_dynamic.
# This may be replaced when dependencies are built.
