# Empty dependencies file for bench_ext_cell_adders.
# This may be replaced when dependencies are built.
