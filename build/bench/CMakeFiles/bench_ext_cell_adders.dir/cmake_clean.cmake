file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cell_adders.dir/bench_ext_cell_adders.cc.o"
  "CMakeFiles/bench_ext_cell_adders.dir/bench_ext_cell_adders.cc.o.d"
  "bench_ext_cell_adders"
  "bench_ext_cell_adders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cell_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
