file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_delay_ned.dir/bench_fig8_delay_ned.cc.o"
  "CMakeFiles/bench_fig8_delay_ned.dir/bench_fig8_delay_ned.cc.o.d"
  "bench_fig8_delay_ned"
  "bench_fig8_delay_ned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_delay_ned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
