# Empty compiler generated dependencies file for bench_fig8_delay_ned.
# This may be replaced when dependencies are built.
