# Empty dependencies file for bench_table3_error_probability.
# This may be replaced when dependencies are built.
