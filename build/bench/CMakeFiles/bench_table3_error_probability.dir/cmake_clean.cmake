file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_error_probability.dir/bench_table3_error_probability.cc.o"
  "CMakeFiles/bench_table3_error_probability.dir/bench_table3_error_probability.cc.o.d"
  "bench_table3_error_probability"
  "bench_table3_error_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_error_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
