file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiplier.dir/bench_ext_multiplier.cc.o"
  "CMakeFiles/bench_ext_multiplier.dir/bench_ext_multiplier.cc.o.d"
  "bench_ext_multiplier"
  "bench_ext_multiplier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiplier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
