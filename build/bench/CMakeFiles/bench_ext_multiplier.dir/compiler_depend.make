# Empty compiler generated dependencies file for bench_ext_multiplier.
# This may be replaced when dependencies are built.
