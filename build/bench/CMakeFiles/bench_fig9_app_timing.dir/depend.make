# Empty dependencies file for bench_fig9_app_timing.
# This may be replaced when dependencies are built.
