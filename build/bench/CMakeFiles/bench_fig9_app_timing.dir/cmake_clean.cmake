file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_app_timing.dir/bench_fig9_app_timing.cc.o"
  "CMakeFiles/bench_fig9_app_timing.dir/bench_fig9_app_timing.cc.o.d"
  "bench_fig9_app_timing"
  "bench_fig9_app_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_app_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
