
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/image_pipeline.cpp" "examples/CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o" "gcc" "examples/CMakeFiles/image_pipeline.dir/image_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gear_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adders/CMakeFiles/gear_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/gear_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gear_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/gear_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gear_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gear_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
