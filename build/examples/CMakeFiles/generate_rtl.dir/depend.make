# Empty dependencies file for generate_rtl.
# This may be replaced when dependencies are built.
