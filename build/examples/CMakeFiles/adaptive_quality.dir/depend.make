# Empty dependencies file for adaptive_quality.
# This may be replaced when dependencies are built.
