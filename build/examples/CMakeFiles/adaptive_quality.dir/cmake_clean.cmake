file(REMOVE_RECURSE
  "CMakeFiles/adaptive_quality.dir/adaptive_quality.cpp.o"
  "CMakeFiles/adaptive_quality.dir/adaptive_quality.cpp.o.d"
  "adaptive_quality"
  "adaptive_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
