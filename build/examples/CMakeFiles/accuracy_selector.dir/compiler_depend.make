# Empty compiler generated dependencies file for accuracy_selector.
# This may be replaced when dependencies are built.
