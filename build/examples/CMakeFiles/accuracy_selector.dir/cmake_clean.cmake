file(REMOVE_RECURSE
  "CMakeFiles/accuracy_selector.dir/accuracy_selector.cpp.o"
  "CMakeFiles/accuracy_selector.dir/accuracy_selector.cpp.o.d"
  "accuracy_selector"
  "accuracy_selector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_selector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
