# Empty dependencies file for gear_tests.
# This may be replaced when dependencies are built.
