
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adaptive.cc" "tests/CMakeFiles/gear_tests.dir/test_adaptive.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_adaptive.cc.o.d"
  "/root/repo/tests/test_adders.cc" "tests/CMakeFiles/gear_tests.dir/test_adders.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_adders.cc.o.d"
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/gear_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/gear_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_bitvec.cc" "tests/CMakeFiles/gear_tests.dir/test_bitvec.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_bitvec.cc.o.d"
  "/root/repo/tests/test_carry_in.cc" "tests/CMakeFiles/gear_tests.dir/test_carry_in.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_carry_in.cc.o.d"
  "/root/repo/tests/test_cell_based.cc" "tests/CMakeFiles/gear_tests.dir/test_cell_based.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_cell_based.cc.o.d"
  "/root/repo/tests/test_circuits.cc" "tests/CMakeFiles/gear_tests.dir/test_circuits.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_circuits.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/gear_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_correction.cc" "tests/CMakeFiles/gear_tests.dir/test_correction.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_correction.cc.o.d"
  "/root/repo/tests/test_coverage.cc" "tests/CMakeFiles/gear_tests.dir/test_coverage.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_coverage.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/gear_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_dot.cc" "tests/CMakeFiles/gear_tests.dir/test_dot.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_dot.cc.o.d"
  "/root/repo/tests/test_error_model.cc" "tests/CMakeFiles/gear_tests.dir/test_error_model.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_error_model.cc.o.d"
  "/root/repo/tests/test_event_sim.cc" "tests/CMakeFiles/gear_tests.dir/test_event_sim.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_event_sim.cc.o.d"
  "/root/repo/tests/test_fault.cc" "tests/CMakeFiles/gear_tests.dir/test_fault.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_fault.cc.o.d"
  "/root/repo/tests/test_gda_select.cc" "tests/CMakeFiles/gear_tests.dir/test_gda_select.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_gda_select.cc.o.d"
  "/root/repo/tests/test_gear_adder.cc" "tests/CMakeFiles/gear_tests.dir/test_gear_adder.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_gear_adder.cc.o.d"
  "/root/repo/tests/test_hetero.cc" "tests/CMakeFiles/gear_tests.dir/test_hetero.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_hetero.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/gear_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_metrics.cc" "tests/CMakeFiles/gear_tests.dir/test_metrics.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_metrics.cc.o.d"
  "/root/repo/tests/test_multiplier.cc" "tests/CMakeFiles/gear_tests.dir/test_multiplier.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_multiplier.cc.o.d"
  "/root/repo/tests/test_netlist.cc" "tests/CMakeFiles/gear_tests.dir/test_netlist.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_netlist.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/gear_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_propagation.cc" "tests/CMakeFiles/gear_tests.dir/test_propagation.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_propagation.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/gear_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_selector.cc" "tests/CMakeFiles/gear_tests.dir/test_selector.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_selector.cc.o.d"
  "/root/repo/tests/test_signed_ops.cc" "tests/CMakeFiles/gear_tests.dir/test_signed_ops.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_signed_ops.cc.o.d"
  "/root/repo/tests/test_sobel.cc" "tests/CMakeFiles/gear_tests.dir/test_sobel.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_sobel.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/gear_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stream_engine.cc" "tests/CMakeFiles/gear_tests.dir/test_stream_engine.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_stream_engine.cc.o.d"
  "/root/repo/tests/test_synth.cc" "tests/CMakeFiles/gear_tests.dir/test_synth.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_synth.cc.o.d"
  "/root/repo/tests/test_transform.cc" "tests/CMakeFiles/gear_tests.dir/test_transform.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_transform.cc.o.d"
  "/root/repo/tests/test_verilog_gen.cc" "tests/CMakeFiles/gear_tests.dir/test_verilog_gen.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_verilog_gen.cc.o.d"
  "/root/repo/tests/test_wide_adder.cc" "tests/CMakeFiles/gear_tests.dir/test_wide_adder.cc.o" "gcc" "tests/CMakeFiles/gear_tests.dir/test_wide_adder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gear_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adders/CMakeFiles/gear_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/gear_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gear_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/gear_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gear_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gear_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
