file(REMOVE_RECURSE
  "CMakeFiles/gear_stats.dir/bootstrap.cc.o"
  "CMakeFiles/gear_stats.dir/bootstrap.cc.o.d"
  "CMakeFiles/gear_stats.dir/distributions.cc.o"
  "CMakeFiles/gear_stats.dir/distributions.cc.o.d"
  "CMakeFiles/gear_stats.dir/histogram.cc.o"
  "CMakeFiles/gear_stats.dir/histogram.cc.o.d"
  "CMakeFiles/gear_stats.dir/rng.cc.o"
  "CMakeFiles/gear_stats.dir/rng.cc.o.d"
  "CMakeFiles/gear_stats.dir/running_stats.cc.o"
  "CMakeFiles/gear_stats.dir/running_stats.cc.o.d"
  "libgear_stats.a"
  "libgear_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
