
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cc" "src/stats/CMakeFiles/gear_stats.dir/bootstrap.cc.o" "gcc" "src/stats/CMakeFiles/gear_stats.dir/bootstrap.cc.o.d"
  "/root/repo/src/stats/distributions.cc" "src/stats/CMakeFiles/gear_stats.dir/distributions.cc.o" "gcc" "src/stats/CMakeFiles/gear_stats.dir/distributions.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/gear_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/gear_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/stats/CMakeFiles/gear_stats.dir/rng.cc.o" "gcc" "src/stats/CMakeFiles/gear_stats.dir/rng.cc.o.d"
  "/root/repo/src/stats/running_stats.cc" "src/stats/CMakeFiles/gear_stats.dir/running_stats.cc.o" "gcc" "src/stats/CMakeFiles/gear_stats.dir/running_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
