file(REMOVE_RECURSE
  "libgear_stats.a"
)
