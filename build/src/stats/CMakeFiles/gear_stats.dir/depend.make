# Empty dependencies file for gear_stats.
# This may be replaced when dependencies are built.
