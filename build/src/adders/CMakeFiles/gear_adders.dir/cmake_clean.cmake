file(REMOVE_RECURSE
  "CMakeFiles/gear_adders.dir/adder.cc.o"
  "CMakeFiles/gear_adders.dir/adder.cc.o.d"
  "CMakeFiles/gear_adders.dir/cell_based.cc.o"
  "CMakeFiles/gear_adders.dir/cell_based.cc.o.d"
  "CMakeFiles/gear_adders.dir/eta.cc.o"
  "CMakeFiles/gear_adders.dir/eta.cc.o.d"
  "CMakeFiles/gear_adders.dir/exact.cc.o"
  "CMakeFiles/gear_adders.dir/exact.cc.o.d"
  "CMakeFiles/gear_adders.dir/gda.cc.o"
  "CMakeFiles/gear_adders.dir/gda.cc.o.d"
  "CMakeFiles/gear_adders.dir/gear_adapter.cc.o"
  "CMakeFiles/gear_adders.dir/gear_adapter.cc.o.d"
  "CMakeFiles/gear_adders.dir/loa.cc.o"
  "CMakeFiles/gear_adders.dir/loa.cc.o.d"
  "CMakeFiles/gear_adders.dir/multiplier.cc.o"
  "CMakeFiles/gear_adders.dir/multiplier.cc.o.d"
  "CMakeFiles/gear_adders.dir/registry.cc.o"
  "CMakeFiles/gear_adders.dir/registry.cc.o.d"
  "CMakeFiles/gear_adders.dir/speculative.cc.o"
  "CMakeFiles/gear_adders.dir/speculative.cc.o.d"
  "libgear_adders.a"
  "libgear_adders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_adders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
