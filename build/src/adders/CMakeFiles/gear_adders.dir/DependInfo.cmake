
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adders/adder.cc" "src/adders/CMakeFiles/gear_adders.dir/adder.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/adder.cc.o.d"
  "/root/repo/src/adders/cell_based.cc" "src/adders/CMakeFiles/gear_adders.dir/cell_based.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/cell_based.cc.o.d"
  "/root/repo/src/adders/eta.cc" "src/adders/CMakeFiles/gear_adders.dir/eta.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/eta.cc.o.d"
  "/root/repo/src/adders/exact.cc" "src/adders/CMakeFiles/gear_adders.dir/exact.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/exact.cc.o.d"
  "/root/repo/src/adders/gda.cc" "src/adders/CMakeFiles/gear_adders.dir/gda.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/gda.cc.o.d"
  "/root/repo/src/adders/gear_adapter.cc" "src/adders/CMakeFiles/gear_adders.dir/gear_adapter.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/gear_adapter.cc.o.d"
  "/root/repo/src/adders/loa.cc" "src/adders/CMakeFiles/gear_adders.dir/loa.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/loa.cc.o.d"
  "/root/repo/src/adders/multiplier.cc" "src/adders/CMakeFiles/gear_adders.dir/multiplier.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/multiplier.cc.o.d"
  "/root/repo/src/adders/registry.cc" "src/adders/CMakeFiles/gear_adders.dir/registry.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/registry.cc.o.d"
  "/root/repo/src/adders/speculative.cc" "src/adders/CMakeFiles/gear_adders.dir/speculative.cc.o" "gcc" "src/adders/CMakeFiles/gear_adders.dir/speculative.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gear_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gear_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
