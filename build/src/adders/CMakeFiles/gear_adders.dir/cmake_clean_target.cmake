file(REMOVE_RECURSE
  "libgear_adders.a"
)
