# Empty compiler generated dependencies file for gear_adders.
# This may be replaced when dependencies are built.
