
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/builder.cc" "src/netlist/CMakeFiles/gear_netlist.dir/builder.cc.o" "gcc" "src/netlist/CMakeFiles/gear_netlist.dir/builder.cc.o.d"
  "/root/repo/src/netlist/circuits.cc" "src/netlist/CMakeFiles/gear_netlist.dir/circuits.cc.o" "gcc" "src/netlist/CMakeFiles/gear_netlist.dir/circuits.cc.o.d"
  "/root/repo/src/netlist/dot.cc" "src/netlist/CMakeFiles/gear_netlist.dir/dot.cc.o" "gcc" "src/netlist/CMakeFiles/gear_netlist.dir/dot.cc.o.d"
  "/root/repo/src/netlist/event_sim.cc" "src/netlist/CMakeFiles/gear_netlist.dir/event_sim.cc.o" "gcc" "src/netlist/CMakeFiles/gear_netlist.dir/event_sim.cc.o.d"
  "/root/repo/src/netlist/fault.cc" "src/netlist/CMakeFiles/gear_netlist.dir/fault.cc.o" "gcc" "src/netlist/CMakeFiles/gear_netlist.dir/fault.cc.o.d"
  "/root/repo/src/netlist/netlist.cc" "src/netlist/CMakeFiles/gear_netlist.dir/netlist.cc.o" "gcc" "src/netlist/CMakeFiles/gear_netlist.dir/netlist.cc.o.d"
  "/root/repo/src/netlist/transform.cc" "src/netlist/CMakeFiles/gear_netlist.dir/transform.cc.o" "gcc" "src/netlist/CMakeFiles/gear_netlist.dir/transform.cc.o.d"
  "/root/repo/src/netlist/verilog_emit.cc" "src/netlist/CMakeFiles/gear_netlist.dir/verilog_emit.cc.o" "gcc" "src/netlist/CMakeFiles/gear_netlist.dir/verilog_emit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gear_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gear_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
