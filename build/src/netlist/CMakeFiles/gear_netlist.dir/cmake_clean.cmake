file(REMOVE_RECURSE
  "CMakeFiles/gear_netlist.dir/builder.cc.o"
  "CMakeFiles/gear_netlist.dir/builder.cc.o.d"
  "CMakeFiles/gear_netlist.dir/circuits.cc.o"
  "CMakeFiles/gear_netlist.dir/circuits.cc.o.d"
  "CMakeFiles/gear_netlist.dir/dot.cc.o"
  "CMakeFiles/gear_netlist.dir/dot.cc.o.d"
  "CMakeFiles/gear_netlist.dir/event_sim.cc.o"
  "CMakeFiles/gear_netlist.dir/event_sim.cc.o.d"
  "CMakeFiles/gear_netlist.dir/fault.cc.o"
  "CMakeFiles/gear_netlist.dir/fault.cc.o.d"
  "CMakeFiles/gear_netlist.dir/netlist.cc.o"
  "CMakeFiles/gear_netlist.dir/netlist.cc.o.d"
  "CMakeFiles/gear_netlist.dir/transform.cc.o"
  "CMakeFiles/gear_netlist.dir/transform.cc.o.d"
  "CMakeFiles/gear_netlist.dir/verilog_emit.cc.o"
  "CMakeFiles/gear_netlist.dir/verilog_emit.cc.o.d"
  "libgear_netlist.a"
  "libgear_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
