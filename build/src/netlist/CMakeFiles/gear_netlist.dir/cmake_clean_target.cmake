file(REMOVE_RECURSE
  "libgear_netlist.a"
)
