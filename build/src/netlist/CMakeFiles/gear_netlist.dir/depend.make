# Empty dependencies file for gear_netlist.
# This may be replaced when dependencies are built.
