file(REMOVE_RECURSE
  "CMakeFiles/gear_analysis.dir/design_space.cc.o"
  "CMakeFiles/gear_analysis.dir/design_space.cc.o.d"
  "CMakeFiles/gear_analysis.dir/metrics.cc.o"
  "CMakeFiles/gear_analysis.dir/metrics.cc.o.d"
  "CMakeFiles/gear_analysis.dir/pareto.cc.o"
  "CMakeFiles/gear_analysis.dir/pareto.cc.o.d"
  "CMakeFiles/gear_analysis.dir/propagation.cc.o"
  "CMakeFiles/gear_analysis.dir/propagation.cc.o.d"
  "CMakeFiles/gear_analysis.dir/selector.cc.o"
  "CMakeFiles/gear_analysis.dir/selector.cc.o.d"
  "CMakeFiles/gear_analysis.dir/table.cc.o"
  "CMakeFiles/gear_analysis.dir/table.cc.o.d"
  "CMakeFiles/gear_analysis.dir/timing_model.cc.o"
  "CMakeFiles/gear_analysis.dir/timing_model.cc.o.d"
  "libgear_analysis.a"
  "libgear_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
