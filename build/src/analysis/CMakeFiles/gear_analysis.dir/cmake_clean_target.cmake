file(REMOVE_RECURSE
  "libgear_analysis.a"
)
