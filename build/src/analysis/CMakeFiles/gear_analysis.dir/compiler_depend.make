# Empty compiler generated dependencies file for gear_analysis.
# This may be replaced when dependencies are built.
