
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/design_space.cc" "src/analysis/CMakeFiles/gear_analysis.dir/design_space.cc.o" "gcc" "src/analysis/CMakeFiles/gear_analysis.dir/design_space.cc.o.d"
  "/root/repo/src/analysis/metrics.cc" "src/analysis/CMakeFiles/gear_analysis.dir/metrics.cc.o" "gcc" "src/analysis/CMakeFiles/gear_analysis.dir/metrics.cc.o.d"
  "/root/repo/src/analysis/pareto.cc" "src/analysis/CMakeFiles/gear_analysis.dir/pareto.cc.o" "gcc" "src/analysis/CMakeFiles/gear_analysis.dir/pareto.cc.o.d"
  "/root/repo/src/analysis/propagation.cc" "src/analysis/CMakeFiles/gear_analysis.dir/propagation.cc.o" "gcc" "src/analysis/CMakeFiles/gear_analysis.dir/propagation.cc.o.d"
  "/root/repo/src/analysis/selector.cc" "src/analysis/CMakeFiles/gear_analysis.dir/selector.cc.o" "gcc" "src/analysis/CMakeFiles/gear_analysis.dir/selector.cc.o.d"
  "/root/repo/src/analysis/table.cc" "src/analysis/CMakeFiles/gear_analysis.dir/table.cc.o" "gcc" "src/analysis/CMakeFiles/gear_analysis.dir/table.cc.o.d"
  "/root/repo/src/analysis/timing_model.cc" "src/analysis/CMakeFiles/gear_analysis.dir/timing_model.cc.o" "gcc" "src/analysis/CMakeFiles/gear_analysis.dir/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adders/CMakeFiles/gear_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gear_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gear_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/gear_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/gear_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
