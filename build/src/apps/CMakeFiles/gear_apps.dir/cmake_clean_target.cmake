file(REMOVE_RECURSE
  "libgear_apps.a"
)
