
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/generate.cc" "src/apps/CMakeFiles/gear_apps.dir/generate.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/generate.cc.o.d"
  "/root/repo/src/apps/image.cc" "src/apps/CMakeFiles/gear_apps.dir/image.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/image.cc.o.d"
  "/root/repo/src/apps/integral.cc" "src/apps/CMakeFiles/gear_apps.dir/integral.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/integral.cc.o.d"
  "/root/repo/src/apps/lpf.cc" "src/apps/CMakeFiles/gear_apps.dir/lpf.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/lpf.cc.o.d"
  "/root/repo/src/apps/quality.cc" "src/apps/CMakeFiles/gear_apps.dir/quality.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/quality.cc.o.d"
  "/root/repo/src/apps/sad.cc" "src/apps/CMakeFiles/gear_apps.dir/sad.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/sad.cc.o.d"
  "/root/repo/src/apps/sobel.cc" "src/apps/CMakeFiles/gear_apps.dir/sobel.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/sobel.cc.o.d"
  "/root/repo/src/apps/stream_engine.cc" "src/apps/CMakeFiles/gear_apps.dir/stream_engine.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/stream_engine.cc.o.d"
  "/root/repo/src/apps/trace.cc" "src/apps/CMakeFiles/gear_apps.dir/trace.cc.o" "gcc" "src/apps/CMakeFiles/gear_apps.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/adders/CMakeFiles/gear_adders.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gear_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gear_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
