# Empty dependencies file for gear_apps.
# This may be replaced when dependencies are built.
