file(REMOVE_RECURSE
  "CMakeFiles/gear_apps.dir/generate.cc.o"
  "CMakeFiles/gear_apps.dir/generate.cc.o.d"
  "CMakeFiles/gear_apps.dir/image.cc.o"
  "CMakeFiles/gear_apps.dir/image.cc.o.d"
  "CMakeFiles/gear_apps.dir/integral.cc.o"
  "CMakeFiles/gear_apps.dir/integral.cc.o.d"
  "CMakeFiles/gear_apps.dir/lpf.cc.o"
  "CMakeFiles/gear_apps.dir/lpf.cc.o.d"
  "CMakeFiles/gear_apps.dir/quality.cc.o"
  "CMakeFiles/gear_apps.dir/quality.cc.o.d"
  "CMakeFiles/gear_apps.dir/sad.cc.o"
  "CMakeFiles/gear_apps.dir/sad.cc.o.d"
  "CMakeFiles/gear_apps.dir/sobel.cc.o"
  "CMakeFiles/gear_apps.dir/sobel.cc.o.d"
  "CMakeFiles/gear_apps.dir/stream_engine.cc.o"
  "CMakeFiles/gear_apps.dir/stream_engine.cc.o.d"
  "CMakeFiles/gear_apps.dir/trace.cc.o"
  "CMakeFiles/gear_apps.dir/trace.cc.o.d"
  "libgear_apps.a"
  "libgear_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
