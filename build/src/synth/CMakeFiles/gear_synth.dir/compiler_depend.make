# Empty compiler generated dependencies file for gear_synth.
# This may be replaced when dependencies are built.
