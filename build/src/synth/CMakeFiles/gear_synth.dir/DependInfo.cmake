
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/lut_map.cc" "src/synth/CMakeFiles/gear_synth.dir/lut_map.cc.o" "gcc" "src/synth/CMakeFiles/gear_synth.dir/lut_map.cc.o.d"
  "/root/repo/src/synth/power.cc" "src/synth/CMakeFiles/gear_synth.dir/power.cc.o" "gcc" "src/synth/CMakeFiles/gear_synth.dir/power.cc.o.d"
  "/root/repo/src/synth/report.cc" "src/synth/CMakeFiles/gear_synth.dir/report.cc.o" "gcc" "src/synth/CMakeFiles/gear_synth.dir/report.cc.o.d"
  "/root/repo/src/synth/timing.cc" "src/synth/CMakeFiles/gear_synth.dir/timing.cc.o" "gcc" "src/synth/CMakeFiles/gear_synth.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/gear_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gear_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/gear_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
