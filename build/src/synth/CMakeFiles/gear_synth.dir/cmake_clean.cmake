file(REMOVE_RECURSE
  "CMakeFiles/gear_synth.dir/lut_map.cc.o"
  "CMakeFiles/gear_synth.dir/lut_map.cc.o.d"
  "CMakeFiles/gear_synth.dir/power.cc.o"
  "CMakeFiles/gear_synth.dir/power.cc.o.d"
  "CMakeFiles/gear_synth.dir/report.cc.o"
  "CMakeFiles/gear_synth.dir/report.cc.o.d"
  "CMakeFiles/gear_synth.dir/timing.cc.o"
  "CMakeFiles/gear_synth.dir/timing.cc.o.d"
  "libgear_synth.a"
  "libgear_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
