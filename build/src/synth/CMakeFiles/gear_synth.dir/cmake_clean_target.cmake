file(REMOVE_RECURSE
  "libgear_synth.a"
)
