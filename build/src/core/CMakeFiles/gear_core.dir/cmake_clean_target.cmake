file(REMOVE_RECURSE
  "libgear_core.a"
)
