
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive.cc" "src/core/CMakeFiles/gear_core.dir/adaptive.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/adaptive.cc.o.d"
  "/root/repo/src/core/adder.cc" "src/core/CMakeFiles/gear_core.dir/adder.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/adder.cc.o.d"
  "/root/repo/src/core/bitvec.cc" "src/core/CMakeFiles/gear_core.dir/bitvec.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/bitvec.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/gear_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/config.cc.o.d"
  "/root/repo/src/core/correction.cc" "src/core/CMakeFiles/gear_core.dir/correction.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/correction.cc.o.d"
  "/root/repo/src/core/coverage.cc" "src/core/CMakeFiles/gear_core.dir/coverage.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/coverage.cc.o.d"
  "/root/repo/src/core/error_model.cc" "src/core/CMakeFiles/gear_core.dir/error_model.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/error_model.cc.o.d"
  "/root/repo/src/core/signed_ops.cc" "src/core/CMakeFiles/gear_core.dir/signed_ops.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/signed_ops.cc.o.d"
  "/root/repo/src/core/verilog_gen.cc" "src/core/CMakeFiles/gear_core.dir/verilog_gen.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/verilog_gen.cc.o.d"
  "/root/repo/src/core/wide_adder.cc" "src/core/CMakeFiles/gear_core.dir/wide_adder.cc.o" "gcc" "src/core/CMakeFiles/gear_core.dir/wide_adder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/gear_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
