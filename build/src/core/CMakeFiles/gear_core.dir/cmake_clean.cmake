file(REMOVE_RECURSE
  "CMakeFiles/gear_core.dir/adaptive.cc.o"
  "CMakeFiles/gear_core.dir/adaptive.cc.o.d"
  "CMakeFiles/gear_core.dir/adder.cc.o"
  "CMakeFiles/gear_core.dir/adder.cc.o.d"
  "CMakeFiles/gear_core.dir/bitvec.cc.o"
  "CMakeFiles/gear_core.dir/bitvec.cc.o.d"
  "CMakeFiles/gear_core.dir/config.cc.o"
  "CMakeFiles/gear_core.dir/config.cc.o.d"
  "CMakeFiles/gear_core.dir/correction.cc.o"
  "CMakeFiles/gear_core.dir/correction.cc.o.d"
  "CMakeFiles/gear_core.dir/coverage.cc.o"
  "CMakeFiles/gear_core.dir/coverage.cc.o.d"
  "CMakeFiles/gear_core.dir/error_model.cc.o"
  "CMakeFiles/gear_core.dir/error_model.cc.o.d"
  "CMakeFiles/gear_core.dir/signed_ops.cc.o"
  "CMakeFiles/gear_core.dir/signed_ops.cc.o.d"
  "CMakeFiles/gear_core.dir/verilog_gen.cc.o"
  "CMakeFiles/gear_core.dir/verilog_gen.cc.o.d"
  "CMakeFiles/gear_core.dir/wide_adder.cc.o"
  "CMakeFiles/gear_core.dir/wide_adder.cc.o.d"
  "libgear_core.a"
  "libgear_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gear_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
