# Empty compiler generated dependencies file for gear_core.
# This may be replaced when dependencies are built.
