// Accuracy-driven configuration selection: give the library an accuracy
// requirement and an objective, get back the cheapest GeAr configuration
// — the "which adder do I instantiate?" question the paper's
// introduction poses, answered without simulating a single candidate.
//
// Run: ./build/examples/accuracy_selector [N] [max_error_%]
#include <cstdio>
#include <cstdlib>

#include "analysis/selector.h"
#include "analysis/table.h"

int main(int argc, char** argv) {
  using namespace gear::analysis;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const double max_err_pct = argc > 2 ? std::atof(argv[2]) : 1.0;
  if (n < 4 || n > 32 || max_err_pct < 0.0) {
    std::fprintf(stderr, "usage: %s [N in 4..32] [max_error_percent]\n", argv[0]);
    return 1;
  }

  SelectionRequest req;
  req.n = n;
  req.max_error_probability = max_err_pct / 100.0;

  std::printf("N=%d, error probability <= %.3f%%:\n\n", n, max_err_pct);
  for (auto [objective, label] :
       {std::pair{Objective::kDelay, "minimal delay"},
        {Objective::kArea, "minimal area"},
        {Objective::kDelayArea, "minimal delay*area"}}) {
    req.objective = objective;
    const auto best = select_config(req);
    if (!best) {
      std::printf("%-20s: no approximate configuration qualifies\n", label);
      continue;
    }
    std::printf("%-20s: GeAr(R=%d,P=%d)  %.3f ns, %d LUTs, Perr %.4f%%%s\n",
                label, best->cfg.r(), best->cfg.p(), best->delay_ns,
                best->area_luts, best->error_probability * 100,
                best->cfg.is_strict() ? "" : "  (relaxed top sub-adder)");
  }

  req.objective = Objective::kDelay;
  const auto ranked = rank_configs(req);
  std::printf("\nFull qualifying short-list (%zu configurations, by delay):\n\n",
              ranked.size());
  Table table({"config", "strict?", "delay[ns]", "area[LUT]", "Perr"});
  std::size_t shown = 0;
  for (const auto& sel : ranked) {
    table.add_row({sel.cfg.name(), sel.cfg.is_strict() ? "yes" : "no",
                   fmt_fixed(sel.delay_ns, 3), std::to_string(sel.area_luts),
                   fmt_pct(sel.error_probability, 4)});
    if (++shown >= 15) break;
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  if (ranked.size() > shown) {
    std::printf("(%zu more omitted)\n", ranked.size() - shown);
  }
  return 0;
}
