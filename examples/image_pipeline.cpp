// Image pipeline: the paper's three application kernels (Image Integral,
// SAD block matching, 3x3 LPF) run end-to-end with an exact adder, a
// plain GeAr adder, and GeAr with error correction — demonstrating the
// application-level accuracy/effort trade-off that motivates approximate
// adders.
//
// Run: ./build/examples/image_pipeline
#include <cstdio>

#include "adders/registry.h"
#include "apps/generate.h"
#include "apps/integral.h"
#include "apps/lpf.h"
#include "apps/quality.h"
#include "apps/sad.h"
#include "stats/rng.h"

int main() {
  using namespace gear;

  stats::Rng rng(2026);
  const apps::Image frame = apps::smoothed_noise_image(256, 160, rng, 2);
  stats::Rng rng2(2027);
  const apps::Image next = apps::shifted_image(frame, 2, 1, 3, rng2);

  // The paper sizes Image Integral at N=20 bits (Section 4.4) so the
  // running sums fit; crop to keep the totals inside 2^20.
  apps::Image crop(64, 48);
  for (int y = 0; y < crop.height(); ++y) {
    for (int x = 0; x < crop.width(); ++x) crop.set(x, y, frame.at(x, y));
  }
  const adders::AdderPtr exact20 = adders::make_adder("rca:20");
  const adders::AdderPtr approx20 = adders::make_adder("gear:20:5:5");
  const adders::AdderPtr tight20 = adders::make_adder("gear:20:5:10");
  const adders::AdderPtr ecc20 = adders::make_adder("gear+ecc:20:5:5");

  std::printf("== Image Integral (2D, N=20 as in the paper) ==\n");
  const auto ii_exact = apps::integral_2d(crop, *exact20);
  const auto ii_approx = apps::integral_2d(crop, *approx20);
  const auto ii_tight = apps::integral_2d(crop, *tight20);
  const auto ii_ecc = apps::integral_2d(crop, *ecc20);
  double mean_exact = 0.0;
  for (const auto& row : ii_exact) {
    for (auto v : row) mean_exact += static_cast<double>(v);
  }
  mean_exact /= static_cast<double>(crop.pixel_count());
  // The integral recurrence re-reads its own outputs, so every dropped
  // carry is re-accumulated by all downstream entries — recurrences
  // amplify approximate-adder error far beyond the per-add rate, which is
  // why the prediction-length knob matters so much here.
  std::printf(
      "  mean |error| / mean value: GeAr(5,5) %.1f%%, GeAr(5,10) %.2f%%, "
      "GeAr+ecc %.2f%%\n",
      apps::integral_mean_abs_error(ii_exact, ii_approx) / mean_exact * 100,
      apps::integral_mean_abs_error(ii_exact, ii_tight) / mean_exact * 100,
      apps::integral_mean_abs_error(ii_exact, ii_ecc) / mean_exact * 100);

  std::printf("== SAD block matching (8x8 blocks, +/-3 search, N=16) ==\n");
  // Accumulating 64 terms multiplies the per-add error rate: GeAr(4,4)'s
  // 5.9%/add means almost every block SAD is perturbed, while GeAr(4,8)'s
  // 0.18%/add leaves most rankings intact — the accuracy knob in action.
  const adders::AdderPtr loose = adders::make_adder("gear:16:4:4");
  const adders::AdderPtr tight = adders::make_adder("gear:16:4:8");
  std::printf("  best-displacement agreement: GeAr(4,4) %.1f%%, GeAr(4,8) %.1f%%\n",
              apps::sad_match_rate(frame, next, 8, 8, 3, *loose) * 100,
              apps::sad_match_rate(frame, next, 8, 8, 3, *tight) * 100);

  std::printf("== 3x3 low-pass filter (12-bit accumulators) ==\n");
  const adders::AdderPtr exact12 = adders::make_adder("rca:12");
  const adders::AdderPtr approx12 = adders::make_adder("gear:12:4:4");
  const adders::AdderPtr ecc12 = adders::make_adder("gear+ecc:12:4:4");
  const apps::Image lpf_exact = apps::lpf3x3(frame, *exact12);
  const apps::Image lpf_approx = apps::lpf3x3(frame, *approx12);
  const apps::Image lpf_ecc = apps::lpf3x3(frame, *ecc12);
  const apps::ImageQuality lpf_q = apps::image_quality(lpf_exact, lpf_approx);
  std::printf("  PSNR vs exact: GeAr(4,4) %.1f dB, GeAr+ecc %s\n", lpf_q.psnr,
              lpf_ecc == lpf_exact ? "bit-exact" : "NOT exact (bug!)");
  std::printf("  exact-pixel rate: GeAr(4,4) %.1f%%\n",
              lpf_q.exact_rate * 100);

  std::printf(
      "\nTakeaway: plain GeAr keeps application quality high (the paper's\n"
      "error-resilience argument); enabling correction recovers bit-exact\n"
      "results when an application phase needs them.\n");
  return 0;
}
