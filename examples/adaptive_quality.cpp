// Runtime-adaptive correction: the error-control select signal from
// paper Section 3.3, driven by a feedback controller. The workload's
// operand distribution shifts mid-stream (smooth values -> noisy
// values); the controller widens/narrows the enabled correction mask to
// hold the residual error rate near a target, spending extra cycles only
// when the data demands it.
//
// Run: ./build/examples/adaptive_quality
#include <cstdio>

#include "core/adaptive.h"
#include "stats/distributions.h"
#include "stats/rng.h"

int main() {
  using namespace gear;

  const auto made = core::GeArConfig::make(16, 2, 2);  // k=7
  if (!made) {
    std::fprintf(stderr, "invalid GeAr(16,2,2): %s\n",
                 core::GeArConfig::invalid_reason(16, 2, 2).c_str());
    return 1;
  }
  const core::GeArConfig cfg = *made;
  core::AdaptivePolicy policy;
  policy.target_error_rate = 0.02;
  policy.window = 512;
  core::AdaptiveCorrector controller(cfg, policy);

  // Phase 1/3: quantized operands (multiples of 256 — zeroed low bytes
  // kill the propagate chains, so boundary carries are rare);
  // Phase 2: uniform operands (heavy carry traffic).
  stats::Rng rng(11);
  auto quantized = [&rng] {
    return stats::OperandPair{rng.bits(8) << 8, rng.bits(8) << 8};
  };
  auto uniform = [&rng] {
    return stats::OperandPair{rng.bits(16), rng.bits(16)};
  };

  std::printf("%s, target residual error %.1f%%, window %u\n\n",
              cfg.name().c_str(), policy.target_error_rate * 100, policy.window);
  std::printf("%-10s %-10s %-14s %-12s %s\n", "phase", "additions",
              "enabled level", "avg cycles", "residual rate");

  auto run_phase = [&](const char* label, auto&& draw, int n) {
    const auto before = controller.stats();
    for (int i = 0; i < n; ++i) {
      const auto [a, b] = draw();
      controller.add(a, b);
    }
    const auto after = controller.stats();
    const auto adds = after.additions - before.additions;
    const auto cyc = after.cycles - before.cycles;
    const auto errs = after.residual_errors - before.residual_errors;
    std::printf("%-10s %-10llu %-14d %-12.3f %.2f%%\n", label,
                static_cast<unsigned long long>(adds), controller.enabled_level(),
                static_cast<double>(cyc) / static_cast<double>(adds),
                100.0 * static_cast<double>(errs) / static_cast<double>(adds));
  };

  run_phase("quantized", quantized, 512 * 12);
  run_phase("uniform", uniform, 512 * 12);
  run_phase("quantized", quantized, 512 * 12);

  std::printf(
      "\nwiden events: %d, narrow events: %d — correction effort follows\n"
      "the data; an application gets near-target quality at minimum cycle\n"
      "cost instead of paying worst-case correction everywhere.\n",
      controller.stats().widen_events, controller.stats().narrow_events);
  return 0;
}
