// Design-space explorer: enumerate every strict GeAr configuration at a
// given width, synthesize each circuit for delay/area, pair it with the
// analytic error probability, and print the Pareto-optimal set — the
// workflow the paper proposes for choosing an approximation mode without
// simulating candidate adders.
//
// Run: ./build/examples/design_space_explorer [N]   (default N=16)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/pareto.h"
#include "analysis/table.h"
#include "core/config.h"
#include "core/error_model.h"
#include "netlist/circuits.h"
#include "synth/report.h"

int main(int argc, char** argv) {
  using namespace gear;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  if (n < 4 || n > 32) {
    std::fprintf(stderr, "usage: %s [N in 4..32]\n", argv[0]);
    return 1;
  }

  std::vector<analysis::DesignCandidate> candidates;
  for (const auto& cfg : core::GeArConfig::enumerate(n)) {
    const auto rep = synth::synthesize(netlist::build_gear(cfg));
    candidates.push_back({cfg.name(), synth::sum_path_delay(rep),
                          static_cast<double>(rep.area_luts),
                          core::paper_error_probability(cfg)});
  }
  // Exact reference point.
  const auto rca = synth::synthesize(netlist::build_rca(n));
  candidates.push_back({"RCA", rca.delay_ns, static_cast<double>(rca.area_luts),
                        0.0});

  const auto front = analysis::pareto_front(candidates);

  std::printf("N=%d: %zu strict GeAr configurations (+RCA), %zu on the\n"
              "delay/area/error Pareto front:\n\n",
              n, candidates.size() - 1, front.size());
  analysis::Table table({"config", "delay[ns]", "area[LUT]", "Perr"});
  for (const auto& c : front) {
    table.add_row({c.label, analysis::fmt_fixed(c.delay_ns, 3),
                   analysis::fmt_fixed(c.area_luts, 0),
                   analysis::fmt_pct(c.error, 4)});
  }
  std::fputs(table.to_ascii().c_str(), stdout);
  std::printf(
      "\nEvery point uses the paper's error model — no adder was simulated\n"
      "to produce this ranking.\n");
  return 0;
}
