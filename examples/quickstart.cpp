// Quickstart: construct a GeAr adder, add numbers approximately, detect
// and correct errors, and query the analytic error model — the library's
// five-minute tour.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/adder.h"
#include "core/config.h"
#include "core/correction.h"
#include "core/error_model.h"
#include "stats/rng.h"

int main() {
  using namespace gear;

  // 1. A GeAr configuration is (N, R, P): 16-bit operands, two 8-bit
  //    sub-adders, each contributing R=4 result bits with P=4 carry-
  //    prediction bits (paper Fig. 3 scaled to 16 bits).
  //    make() returns std::nullopt for invalid parameters;
  //    invalid_reason() says which constraint was violated.
  const auto made = core::GeArConfig::make(16, 4, 4);
  if (!made) {
    std::fprintf(stderr, "invalid GeAr(16,4,4): %s\n",
                 core::GeArConfig::invalid_reason(16, 4, 4).c_str());
    return 1;
  }
  const core::GeArConfig cfg = *made;
  std::printf("%s: k=%d sub-adders of length L=%d, carry chains <= %d bits\n",
              cfg.name().c_str(), cfg.k(), cfg.l(), cfg.max_carry_chain());

  // 2. Approximate addition. Most inputs are exact...
  const core::GeArAdder adder(cfg);
  std::printf("1000 + 2000 = %llu (exact %u)\n",
              static_cast<unsigned long long>(adder.add_value(1000, 2000)), 3000);

  // ...but inputs whose carry crosses a sub-adder boundary through a fully
  // propagating prediction window lose that carry:
  const std::uint64_t a = 0x00FF, b = 0x0001;
  const core::AddResult res = adder.add(a, b);
  std::printf("0x%04llx + 0x%04llx = 0x%04llx (exact 0x%04llx), detected=%s\n",
              static_cast<unsigned long long>(a),
              static_cast<unsigned long long>(b),
              static_cast<unsigned long long>(res.sum),
              static_cast<unsigned long long>(a + b),
              res.error_detected() ? "yes" : "no");

  // 3. Error correction: enable every sub-adder and the result is exact,
  //    at the cost of one extra cycle per corrected sub-adder.
  const core::Corrector corrector(cfg, core::Corrector::all_enabled());
  const core::CorrectionResult fixed = corrector.add(a, b);
  std::printf("corrected: 0x%04llx in %d cycle(s)\n",
              static_cast<unsigned long long>(fixed.sum), fixed.cycles);

  // 4. The analytic error model predicts the error rate without
  //    simulation (paper Section 3.2)...
  const double model = core::paper_error_probability(cfg);
  std::printf("model error probability: %.4f%%\n", model * 100);

  // 5. ...and a seeded Monte-Carlo run confirms it.
  stats::Rng rng(42);
  const auto mc = core::mc_error_probability(cfg, 100000, rng);
  std::printf("measured on 100000 uniform pairs: %.4f%% [%.4f%%, %.4f%%]\n",
              mc.p * 100, mc.ci.lo * 100, mc.ci.hi * 100);
  return 0;
}
