// RTL generation: reproduce the paper's open-source deliverable by
// emitting synthesizable Verilog for any GeAr configuration — behavioural
// RTL (+ error-correcting wrapper + self-checking testbench) and the
// structural gate-level netlist used by the synthesis substrate — and,
// with --all, the structural netlists of every baseline adder family the
// paper compares (the full RTL library the authors released).
//
// Run: ./build/examples/generate_rtl 16 4 4 [outdir]
//      ./build/examples/generate_rtl --all 16 [outdir]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/config.h"
#include "core/verilog_gen.h"
#include "netlist/circuits.h"
#include "netlist/verilog_emit.h"

namespace {

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  std::printf("  wrote %s (%zu bytes)\n", path.c_str(), content.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gear;
  if (argc >= 3 && std::strcmp(argv[1], "--all") == 0) {
    // Emit the structural netlists of the whole comparison library.
    const int n = std::atoi(argv[2]);
    const std::string outdir = argc > 3 ? argv[3] : ".";
    if (n < 8 || n > 32 || n % 4 != 0) {
      std::fprintf(stderr, "--all requires N in {8,12,...,32}\n");
      return 1;
    }
    std::printf("Generating the adder RTL library at N=%d:\n", n);
    bool ok = true;
    auto emit = [&](const netlist::Netlist& nl) {
      ok &= write_file(outdir + "/" + nl.name() + ".v", netlist::to_verilog(nl));
    };
    emit(netlist::build_rca(n));
    emit(netlist::build_cla(n));
    emit(netlist::build_aca1(n, 4));
    emit(netlist::build_aca2(n, 8));
    emit(netlist::build_etaii(n, 4));
    emit(netlist::build_gda(n, 4, 4));
    emit(netlist::build_gear(*core::GeArConfig::make_relaxed(n, 4, 4)));
    return ok ? 0 : 1;
  }
  if (argc < 4) {
    std::fprintf(stderr, "usage: %s N R P [outdir] | %s --all N [outdir]\n",
                 argv[0], argv[0]);
    return 1;
  }
  const int n = std::atoi(argv[1]);
  const int r = std::atoi(argv[2]);
  const int p = std::atoi(argv[3]);
  const std::string outdir = argc > 4 ? argv[4] : ".";

  const auto cfg = core::GeArConfig::make_relaxed(n, r, p);
  if (!cfg) {
    std::fprintf(stderr, "invalid GeAr configuration (N=%d,R=%d,P=%d): %s\n", n,
                 r, p, core::GeArConfig::invalid_reason(n, r, p).c_str());
    return 1;
  }
  std::printf("Generating RTL for %s (k=%d, L=%d):\n", cfg->name().c_str(),
              cfg->k(), cfg->l());

  const std::string base = outdir + "/" + core::verilog_module_name(*cfg);
  bool ok = true;
  ok &= write_file(base + ".v", core::generate_verilog(*cfg));
  ok &= write_file(base + "_ecc.v", core::generate_verilog_with_correction(*cfg));
  ok &= write_file(base + "_tb.v", core::generate_verilog_testbench(*cfg, 10000));
  ok &= write_file(base + "_gates.v",
                   netlist::to_verilog(netlist::build_gear(*cfg)));
  if (!ok) return 1;

  std::printf(
      "\nSimulate with any Verilog simulator, e.g.:\n"
      "  iverilog -o tb %s.v %s_tb.v && ./tb   (expect: PASS)\n",
      base.c_str(), base.c_str());
  return 0;
}
